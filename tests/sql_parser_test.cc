#include <gtest/gtest.h>

#include "common/date.h"
#include "sql/parser.h"

namespace bufferdb::sql {
namespace {

SelectStatement MustParse(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(*r) : SelectStatement{};
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x, 42, 3.5, 'str' <= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");  // Lowercased.
  EXPECT_EQ((*tokens)[2].type, TokenType::kSymbol);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].float_value, 3.5);
  EXPECT_EQ((*tokens)[7].text, "str");
  EXPECT_EQ((*tokens)[8].text, "<=");
  EXPECT_EQ((*tokens)[9].text, "<>");
  EXPECT_EQ((*tokens)[10].text, "<>");  // != normalized.
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(ParserTest, Query1FromThePaper) {
  SelectStatement stmt = MustParse(R"(
      SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax))
               AS sum_charge,
             AVG(l_quantity) AS avg_qty,
             COUNT(*) AS count_order
      FROM lineitem
      WHERE l_shipdate <= DATE '1998-09-02';)");
  ASSERT_EQ(stmt.items.size(), 3u);
  EXPECT_TRUE(stmt.items[0].is_aggregate);
  EXPECT_EQ(stmt.items[0].agg_func, AggFunc::kSum);
  EXPECT_EQ(stmt.items[0].alias, "sum_charge");
  EXPECT_EQ(stmt.items[2].agg_func, AggFunc::kCountStar);
  EXPECT_EQ(stmt.items[2].expr, nullptr);
  ASSERT_EQ(stmt.from_tables.size(), 1u);
  EXPECT_EQ(stmt.from_tables[0], "lineitem");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->binary_op, BinaryOp::kLe);
  EXPECT_EQ(stmt.where->right->literal.type(), DataType::kDate);
  EXPECT_EQ(stmt.where->right->literal.date_value(),
            bufferdb::MakeDate(1998, 9, 2));
}

TEST(ParserTest, Query3FromThePaper) {
  SelectStatement stmt = MustParse(R"(
      SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount)
      FROM lineitem, orders
      WHERE l_orderkey = o_orderkey
        AND l_shipdate <= DATE '1998-09-02')");
  EXPECT_EQ(stmt.from_tables.size(), 2u);
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, GroupByOrderByLimit) {
  SelectStatement stmt = MustParse(
      "SELECT l_returnflag, COUNT(*) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag DESC LIMIT 10");
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0], "l_returnflag");
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_EQ(stmt.limit, 10);
}

TEST(ParserTest, OperatorPrecedence) {
  SelectStatement stmt =
      MustParse("SELECT a FROM t WHERE a + b * 2 < 10 AND c = 1 OR d = 2");
  // OR at the root.
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(stmt.where->left->binary_op, BinaryOp::kAnd);
  const ParseExpr& cmp = *stmt.where->left->left;
  EXPECT_EQ(cmp.binary_op, BinaryOp::kLt);
  // a + (b * 2).
  EXPECT_EQ(cmp.left->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(cmp.left->right->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  SelectStatement stmt = MustParse("SELECT (a + b) * 2 FROM t");
  EXPECT_EQ(stmt.items[0].expr->binary_op, BinaryOp::kMul);
  EXPECT_EQ(stmt.items[0].expr->left->binary_op, BinaryOp::kAdd);
}

TEST(ParserTest, UnaryConstructs) {
  SelectStatement stmt =
      MustParse("SELECT a FROM t WHERE NOT a = 1 AND b IS NOT NULL AND -c < 0");
  EXPECT_EQ(stmt.where->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, QualifiedColumnNames) {
  SelectStatement stmt =
      MustParse("SELECT lineitem.l_orderkey FROM lineitem");
  EXPECT_EQ(stmt.items[0].expr->column_name, "lineitem.l_orderkey");
}

TEST(ParserTest, CountColumnVsCountStar) {
  SelectStatement stmt = MustParse("SELECT COUNT(a), COUNT(*) FROM t");
  EXPECT_EQ(stmt.items[0].agg_func, AggFunc::kCount);
  ASSERT_NE(stmt.items[0].expr, nullptr);
  EXPECT_EQ(stmt.items[1].agg_func, AggFunc::kCountStar);
}

TEST(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());             // No FROM.
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());        // No table.
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(a FROM t").ok());  // Missing ')'.
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra_tokens").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE d = DATE '1998-99-99'").ok());
}

TEST(ParserTest, ToStringRendersTree) {
  SelectStatement stmt = MustParse("SELECT a FROM t WHERE a * 2 <= 10");
  EXPECT_EQ(stmt.where->ToString(), "((a * 2) <= 10)");
}

}  // namespace
}  // namespace bufferdb::sql

namespace bufferdb::sql {
namespace {

TEST(ParserExtensionsTest, BetweenDesugarsToRange) {
  auto r = ParseSelect("SELECT a FROM t WHERE a BETWEEN 2 AND 5");
  ASSERT_TRUE(r.ok()) << r.status();
  const ParseExpr& w = *r->where;
  EXPECT_EQ(w.binary_op, BinaryOp::kAnd);
  EXPECT_EQ(w.left->binary_op, BinaryOp::kGe);
  EXPECT_EQ(w.right->binary_op, BinaryOp::kLe);
  EXPECT_EQ(w.left->left->column_name, "a");
  EXPECT_EQ(w.right->left->column_name, "a");
}

TEST(ParserExtensionsTest, InDesugarsToDisjunction) {
  auto r = ParseSelect("SELECT a FROM t WHERE m IN ('MAIL', 'SHIP', 'AIR')");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(r->where->right->binary_op, BinaryOp::kEq);
}

TEST(ParserExtensionsTest, NotInWrapsNot) {
  auto r = ParseSelect("SELECT a FROM t WHERE m NOT IN (1, 2)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->where->kind, ParseExpr::Kind::kUnary);
  EXPECT_EQ(r->where->unary_op, UnaryOp::kNot);
}

TEST(ParserExtensionsTest, LikeAndNotLike) {
  auto r = ParseSelect("SELECT a FROM t WHERE p LIKE 'PROMO%'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->where->binary_op, BinaryOp::kLike);

  auto n = ParseSelect("SELECT a FROM t WHERE p NOT LIKE 'PROMO%'");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(n->where->kind, ParseExpr::Kind::kUnary);
  EXPECT_EQ(n->where->left->binary_op, BinaryOp::kLike);
}

TEST(ParserExtensionsTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a IN 1, 2").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a NOT 5").ok());
}

}  // namespace
}  // namespace bufferdb::sql

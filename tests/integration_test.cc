// End-to-end reproduction checks: the paper's headline effects measured on
// the full stack (SQL -> binder -> planner -> refiner -> executor -> CPU
// simulator) over TPC-H data.

#include <gtest/gtest.h>

#include "plan/physical_planner.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

constexpr char kQuery1[] =
    "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS s, "
    "AVG(l_quantity) AS a, COUNT(*) AS c "
    "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'";

constexpr char kQuery2[] =
    "SELECT COUNT(*) AS c FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-09-02'";

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.004;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  struct RunResult {
    std::vector<std::vector<Value>> rows;
    sim::SimCounters counters;
    double seconds;
  };

  static RunResult Execute(const std::string& sql, bool refine,
                           JoinStrategy strategy = JoinStrategy::kAuto) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PlannerOptions options;
    options.refine = refine;
    options.join_strategy = strategy;
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();

    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return RunResult{rows.ok() ? *rows : std::vector<std::vector<Value>>{},
                     cpu.counters(), cpu.Breakdown().seconds()};
  }

  static Catalog* catalog_;
};

Catalog* IntegrationTest::catalog_ = nullptr;

TEST_F(IntegrationTest, Query1BufferingPreservesResults) {
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  ASSERT_EQ(original.rows.size(), 1u);
  ASSERT_EQ(buffered.rows.size(), 1u);
  EXPECT_NEAR(original.rows[0][0].double_value(),
              buffered.rows[0][0].double_value(), 1e-6);
  EXPECT_NEAR(original.rows[0][1].double_value(),
              buffered.rows[0][1].double_value(), 1e-12);
  EXPECT_EQ(original.rows[0][2], buffered.rows[0][2]);
}

TEST_F(IntegrationTest, Query1BufferingCutsTraceCacheMisses) {
  // The paper's headline: up to 80% fewer L1-I misses on Query 1 (Fig. 10).
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  EXPECT_LT(buffered.counters.l1i_misses,
            original.counters.l1i_misses / 2);
}

TEST_F(IntegrationTest, Query1BufferingImprovesTime) {
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  EXPECT_LT(buffered.seconds, original.seconds);
}

TEST_F(IntegrationTest, Query1BufferingReducesBranchMispredictions) {
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  EXPECT_LT(buffered.counters.mispredicts, original.counters.mispredicts);
}

TEST_F(IntegrationTest, Query1InstructionCountsNearlyEqual) {
  // Table 4: buffered and original plans execute (almost) the same number
  // of instructions — buffer operators are light-weight. Allow 5%.
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  double ratio = static_cast<double>(buffered.counters.instructions) /
                 static_cast<double>(original.counters.instructions);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST_F(IntegrationTest, Query2RefinerAddsNoBuffer) {
  // Fig. 9: Scan+Agg(COUNT) fit in L1-I together; refinement must leave the
  // plan alone, and the unbuffered plan shows few trace-cache misses.
  sql::Binder binder(catalog_);
  auto q = binder.BindSql(kQuery2);
  ASSERT_TRUE(q.ok());
  PlannerOptions options;
  options.refine = true;
  PhysicalPlanner planner(catalog_, options);
  RefinementReport report;
  auto plan = planner.CreatePlan(*q, &report);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(report.buffers_added, 0);
}

TEST_F(IntegrationTest, Query2MissRateLowWithoutBuffering) {
  RunResult original = Execute(kQuery2, false);
  // Unbuffered Query 2 already enjoys instruction locality: misses per
  // module call are far below one line.
  double misses_per_call =
      static_cast<double>(original.counters.l1i_misses) /
      static_cast<double>(original.counters.module_calls);
  EXPECT_LT(misses_per_call, 1.0);
}

TEST_F(IntegrationTest, JoinStrategiesAllBenefitFromBuffering) {
  constexpr char kQuery3[] =
      "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
      "FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";
  for (JoinStrategy strategy :
       {JoinStrategy::kIndexNestLoop, JoinStrategy::kHashJoin,
        JoinStrategy::kMergeJoin}) {
    RunResult original = Execute(kQuery3, false, strategy);
    RunResult buffered = Execute(kQuery3, true, strategy);
    ASSERT_EQ(original.rows.size(), 1u);
    EXPECT_NEAR(original.rows[0][0].double_value(),
                buffered.rows[0][0].double_value(), 1e-6)
        << JoinStrategyName(strategy);
    EXPECT_LT(buffered.counters.l1i_misses, original.counters.l1i_misses)
        << JoinStrategyName(strategy);
    EXPECT_LT(buffered.seconds, original.seconds)
        << JoinStrategyName(strategy);
  }
}

TEST_F(IntegrationTest, BufferedPlansIncurSlightlyMoreL2Misses) {
  // §7.2: "The overhead of extra buffering introduces slightly more L2
  // cache misses" — more data (the pointer arrays) is in flight.
  RunResult original = Execute(kQuery1, false);
  RunResult buffered = Execute(kQuery1, true);
  EXPECT_GE(buffered.counters.l2_misses, original.counters.l2_misses);
  // But the effect is small: well under 1% of cycles either way.
  EXPECT_LT(static_cast<double>(buffered.counters.l2_misses) * 276.0,
            0.05 * buffered.seconds * 2.4e9);
}

TEST_F(IntegrationTest, GroupByQueryWorksThroughFullStack) {
  RunResult result = Execute(
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS q, COUNT(*) AS c "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, "
      "l_linestatus",
      true);
  // TPC-H Q1 grouping yields three (flag, status) combinations in our
  // generator: (A,F), (N,O), (R,F).
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0], Value::String("A"));
  EXPECT_EQ(result.rows[0][1], Value::String("F"));
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

// The instruction-side simulator is fully deterministic: identical runs
// produce identical instruction/L1I/branch/ITLB counters bit for bit (the
// synthetic code layout has fixed addresses). Data-side counters use real
// heap addresses and may wiggle by a fraction of a percent between runs.
TEST(DeterminismTest, IdenticalRunsProduceIdenticalCounters) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(tpch::LoadTpch(config, &catalog).ok());
  constexpr char kSql[] =
      "SELECT SUM(l_extendedprice * (1 - l_discount)) AS s, COUNT(*) AS c "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'";

  sim::SimCounters counters[2];
  for (int run = 0; run < 2; ++run) {
    sql::Binder binder(&catalog);
    auto q = binder.BindSql(kSql);
    ASSERT_TRUE(q.ok());
    PlannerOptions options;
    options.refine = true;
    PhysicalPlanner planner(&catalog, options);
    auto plan = planner.CreatePlan(*q);
    ASSERT_TRUE(plan.ok());
    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    ASSERT_TRUE(rows.ok());
    counters[run] = cpu.counters();
  }
  EXPECT_EQ(counters[0].instructions, counters[1].instructions);
  EXPECT_EQ(counters[0].l1i_misses, counters[1].l1i_misses);
  EXPECT_EQ(counters[0].branches, counters[1].branches);
  EXPECT_EQ(counters[0].mispredicts, counters[1].mispredicts);
  EXPECT_EQ(counters[0].itlb_misses, counters[1].itlb_misses);
  EXPECT_EQ(counters[0].module_calls, counters[1].module_calls);
  // Data-side: same access count, near-identical misses.
  EXPECT_EQ(counters[0].l1d_accesses, counters[1].l1d_accesses);
  EXPECT_NEAR(static_cast<double>(counters[0].l1d_misses),
              static_cast<double>(counters[1].l1d_misses),
              0.01 * static_cast<double>(counters[0].l1d_misses) + 16);
}

// Running with ctx.cpu == nullptr must produce the same query results as a
// simulated run (the instrumentation is observation-only).
TEST(DeterminismTest, SimulationDoesNotChangeResults) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(tpch::LoadTpch(config, &catalog).ok());
  constexpr char kSql[] =
      "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag";

  std::vector<std::vector<Value>> results[2];
  for (int with_sim = 0; with_sim < 2; ++with_sim) {
    sql::Binder binder(&catalog);
    auto q = binder.BindSql(kSql);
    ASSERT_TRUE(q.ok());
    PlannerOptions options;
    options.refine = true;
    PhysicalPlanner planner(&catalog, options);
    auto plan = planner.CreatePlan(*q);
    ASSERT_TRUE(plan.ok());
    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = with_sim ? &cpu : nullptr;
    auto rows = ExecutePlanRows(plan->get(), &ctx);
    ASSERT_TRUE(rows.ok());
    results[with_sim] = *rows;
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i][0], results[1][i][0]);
    EXPECT_EQ(results[0][i][1], results[1][i][1]);
  }
}

}  // namespace
}  // namespace bufferdb

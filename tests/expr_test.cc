#include <gtest/gtest.h>

#include "common/arena.h"
#include "expr/evaluator.h"
#include "expr/expression.h"
#include "storage/tuple.h"

namespace bufferdb {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"b", DataType::kBool},
                 {"s", DataType::kString},
                 {"n", DataType::kInt64}}) {
    TupleBuilder builder(&schema_);
    builder.SetInt64(0, 10);
    builder.SetDouble(1, 2.5);
    builder.SetBool(2, true);
    builder.SetString(3, "abc");
    builder.SetNull(4);
    row_ = builder.Finish(&arena_);
  }

  ExprPtr Col(const std::string& name) {
    auto r = MakeColumnRef(schema_, name);
    EXPECT_TRUE(r.ok());
    return std::move(*r);
  }
  ExprPtr Lit(Value v) { return MakeLiteral(std::move(v)); }
  ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto res = MakeBinary(op, std::move(l), std::move(r));
    EXPECT_TRUE(res.ok()) << res.status();
    return std::move(*res);
  }
  Value Eval(const ExprPtr& e) { return e->Evaluate(TupleView(row_, &schema_)); }

  Schema schema_;
  Arena arena_;
  const uint8_t* row_;
};

TEST_F(ExprTest, ColumnRefReadsTypedValues) {
  EXPECT_EQ(Eval(Col("i")), Value::Int64(10));
  EXPECT_EQ(Eval(Col("d")), Value::Double(2.5));
  EXPECT_EQ(Eval(Col("b")), Value::Bool(true));
  EXPECT_EQ(Eval(Col("s")), Value::String("abc"));
  EXPECT_TRUE(Eval(Col("n")).is_null());
}

TEST_F(ExprTest, UnknownColumnFails) {
  EXPECT_FALSE(MakeColumnRef(schema_, "zzz").ok());
}

TEST_F(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kAdd, Col("i"), Lit(Value::Int64(5)))),
            Value::Int64(15));
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, Col("i"), Lit(Value::Int64(3)))),
            Value::Int64(7));
  EXPECT_EQ(Eval(Bin(BinaryOp::kMul, Col("i"), Lit(Value::Int64(4)))),
            Value::Int64(40));
  EXPECT_EQ(Eval(Bin(BinaryOp::kDiv, Col("i"), Lit(Value::Int64(3)))),
            Value::Int64(3));
}

TEST_F(ExprTest, MixedArithmeticWidensToDouble) {
  ExprPtr e = Bin(BinaryOp::kMul, Col("i"), Col("d"));
  EXPECT_EQ(e->result_type(), DataType::kDouble);
  EXPECT_EQ(Eval(e), Value::Double(25.0));
}

TEST_F(ExprTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kDiv, Col("i"), Lit(Value::Int64(0))))
                  .is_null());
  EXPECT_TRUE(Eval(Bin(BinaryOp::kDiv, Col("d"), Lit(Value::Double(0.0))))
                  .is_null());
}

TEST_F(ExprTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kAdd, Col("n"), Lit(Value::Int64(1))))
                  .is_null());
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kLt, Col("i"), Lit(Value::Int64(11)))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kGe, Col("i"), Lit(Value::Int64(11)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Bin(BinaryOp::kEq, Col("s"), Lit(Value::String("abc")))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kNe, Col("s"), Lit(Value::String("abd")))),
            Value::Bool(true));
}

TEST_F(ExprTest, ComparisonWithNullIsNull) {
  EXPECT_TRUE(Eval(Bin(BinaryOp::kEq, Col("n"), Lit(Value::Int64(0))))
                  .is_null());
}

TEST_F(ExprTest, ThreeValuedAnd) {
  ExprPtr null_cmp = Bin(BinaryOp::kEq, Col("n"), Lit(Value::Int64(0)));
  // NULL AND FALSE = FALSE.
  EXPECT_EQ(Eval(Bin(BinaryOp::kAnd, null_cmp->Clone(),
                     Lit(Value::Bool(false)))),
            Value::Bool(false));
  // NULL AND TRUE = NULL.
  EXPECT_TRUE(Eval(Bin(BinaryOp::kAnd, null_cmp->Clone(),
                       Lit(Value::Bool(true))))
                  .is_null());
}

TEST_F(ExprTest, ThreeValuedOr) {
  ExprPtr null_cmp = Bin(BinaryOp::kEq, Col("n"), Lit(Value::Int64(0)));
  // NULL OR TRUE = TRUE.
  EXPECT_EQ(Eval(Bin(BinaryOp::kOr, null_cmp->Clone(), Lit(Value::Bool(true)))),
            Value::Bool(true));
  // NULL OR FALSE = NULL.
  EXPECT_TRUE(Eval(Bin(BinaryOp::kOr, null_cmp->Clone(),
                       Lit(Value::Bool(false))))
                  .is_null());
}

TEST_F(ExprTest, NotAndIsNull) {
  auto not_b = MakeUnary(UnaryOp::kNot, Col("b"));
  ASSERT_TRUE(not_b.ok());
  EXPECT_EQ(Eval(*not_b), Value::Bool(false));

  auto is_null = MakeUnary(UnaryOp::kIsNull, Col("n"));
  ASSERT_TRUE(is_null.ok());
  EXPECT_EQ(Eval(*is_null), Value::Bool(true));

  auto is_not_null = MakeUnary(UnaryOp::kIsNotNull, Col("n"));
  ASSERT_TRUE(is_not_null.ok());
  EXPECT_EQ(Eval(*is_not_null), Value::Bool(false));
}

TEST_F(ExprTest, Negate) {
  auto neg = MakeUnary(UnaryOp::kNegate, Col("d"));
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(Eval(*neg), Value::Double(-2.5));
}

TEST_F(ExprTest, TypeCheckingRejectsBadCombinations) {
  EXPECT_FALSE(MakeBinary(BinaryOp::kAdd, Col("s"), Lit(Value::Int64(1))).ok());
  EXPECT_FALSE(MakeBinary(BinaryOp::kEq, Col("s"), Lit(Value::Int64(1))).ok());
  EXPECT_FALSE(MakeBinary(BinaryOp::kAnd, Col("i"), Col("b")).ok());
  EXPECT_FALSE(MakeUnary(UnaryOp::kNot, Col("i")).ok());
  EXPECT_FALSE(MakeUnary(UnaryOp::kNegate, Col("s")).ok());
}

TEST_F(ExprTest, CloneIsDeepAndEquivalent) {
  ExprPtr e = Bin(BinaryOp::kMul, Col("i"),
                  Bin(BinaryOp::kAdd, Col("d"), Lit(Value::Double(1.0))));
  ExprPtr clone = e->Clone();
  EXPECT_EQ(e->ToString(), clone->ToString());
  EXPECT_EQ(Eval(e), Eval(clone));
}

TEST_F(ExprTest, ToStringIsReadable) {
  ExprPtr e = Bin(BinaryOp::kLe, Col("i"), Lit(Value::Int64(5)));
  EXPECT_EQ(e->ToString(), "(i <= 5)");
}

TEST_F(ExprTest, EvaluatePredicateTreatsNullAsFalse) {
  ExprPtr null_cmp = Bin(BinaryOp::kEq, Col("n"), Lit(Value::Int64(0)));
  EXPECT_FALSE(EvaluatePredicate(*null_cmp, TupleView(row_, &schema_)));
  ExprPtr true_cmp = Bin(BinaryOp::kGt, Col("i"), Lit(Value::Int64(0)));
  EXPECT_TRUE(EvaluatePredicate(*true_cmp, TupleView(row_, &schema_)));
}

TEST_F(ExprTest, CollectColumnsFindsDistinctRefs) {
  ExprPtr e = Bin(BinaryOp::kAdd, Col("i"),
                  Bin(BinaryOp::kMul, Col("d"), Col("i")));
  std::vector<int> cols;
  CollectColumns(*e, &cols);
  EXPECT_EQ(cols.size(), 2u);
}

TEST_F(ExprTest, ConstantAndBoundChecks) {
  EXPECT_TRUE(IsConstantExpr(*Lit(Value::Int64(1))));
  EXPECT_FALSE(IsConstantExpr(*Col("i")));
  EXPECT_TRUE(ExprBoundTo(*Col("i"), schema_.num_columns()));
  EXPECT_FALSE(ExprBoundTo(*MakeColumnRefUnchecked(99, DataType::kInt64, "x"),
                           schema_.num_columns()));
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

TEST(LikeMatchTest, ExactAndWildcards) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_go"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("PROMO PLATED STEEL", "PROMO%"));
  EXPECT_FALSE(LikeMatch("STANDARD PLATED", "PROMO%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("acb", "a%b%c"));
}

TEST(LikeMatchTest, BacktrackingAcrossRepeats) {
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%pi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%issx%"));
}

class LikeExprTest : public ::testing::Test {
 protected:
  LikeExprTest() : schema_({{"s", DataType::kString}}) {
    TupleBuilder b(&schema_);
    b.SetString(0, "PROMO BRUSHED");
    row_ = b.Finish(&arena_);
  }
  Schema schema_;
  Arena arena_;
  const uint8_t* row_;
};

TEST_F(LikeExprTest, EvaluatesThroughExpressionTree) {
  auto col = MakeColumnRef(schema_, "s");
  ASSERT_TRUE(col.ok());
  auto like = MakeBinary(BinaryOp::kLike, std::move(*col),
                         MakeLiteral(Value::String("PROMO%")));
  ASSERT_TRUE(like.ok());
  EXPECT_EQ((*like)->Evaluate(TupleView(row_, &schema_)), Value::Bool(true));
  EXPECT_EQ((*like)->ToString(), "(s LIKE PROMO%)");
}

TEST_F(LikeExprTest, TypeCheckedToStrings) {
  auto col = MakeColumnRef(schema_, "s");
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(
      MakeBinary(BinaryOp::kLike, std::move(*col),
                 MakeLiteral(Value::Int64(1)))
          .ok());
}

TEST_F(LikeExprTest, NullPropagates) {
  auto like = MakeBinary(BinaryOp::kLike,
                         MakeLiteral(Value::Null(DataType::kString)),
                         MakeLiteral(Value::String("%")));
  ASSERT_TRUE(like.ok());
  EXPECT_TRUE((*like)->Evaluate(TupleView(row_, &schema_)).is_null());
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

class FoldTest : public ::testing::Test {
 protected:
  FoldTest() : schema_({{"x", DataType::kInt64}}) {}
  ExprPtr Col() {
    return MakeColumnRefUnchecked(0, DataType::kInt64, "x");
  }
  ExprPtr Lit(Value v) { return MakeLiteral(std::move(v)); }
  ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto res = MakeBinary(op, std::move(l), std::move(r));
    EXPECT_TRUE(res.ok());
    return std::move(*res);
  }
  Schema schema_;
};

TEST_F(FoldTest, FoldsConstantArithmetic) {
  ExprPtr e = FoldConstants(Bin(
      BinaryOp::kMul, Lit(Value::Int64(6)),
      Bin(BinaryOp::kAdd, Lit(Value::Int64(3)), Lit(Value::Int64(4)))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*e).value(), Value::Int64(42));
}

TEST_F(FoldTest, FoldsComparisonsToBool) {
  ExprPtr e = FoldConstants(
      Bin(BinaryOp::kLt, Lit(Value::Int64(1)), Lit(Value::Int64(2))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*e).value(), Value::Bool(true));
}

TEST_F(FoldTest, ShortCircuitsBooleans) {
  // FALSE AND x -> FALSE even with a non-constant side.
  ExprPtr e = FoldConstants(
      Bin(BinaryOp::kAnd, Lit(Value::Bool(false)),
          Bin(BinaryOp::kGt, Col(), Lit(Value::Int64(0)))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*e).value(), Value::Bool(false));

  // TRUE AND x -> x.
  ExprPtr kept = FoldConstants(
      Bin(BinaryOp::kAnd, Lit(Value::Bool(true)),
          Bin(BinaryOp::kGt, Col(), Lit(Value::Int64(0)))));
  EXPECT_EQ(kept->kind(), ExprKind::kBinary);

  // x OR TRUE -> TRUE.
  ExprPtr t = FoldConstants(
      Bin(BinaryOp::kOr, Bin(BinaryOp::kGt, Col(), Lit(Value::Int64(0))),
          Lit(Value::Bool(true))));
  ASSERT_EQ(t->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*t).value(), Value::Bool(true));
}

TEST_F(FoldTest, NonConstantSubtreesPreserved) {
  ExprPtr e = FoldConstants(
      Bin(BinaryOp::kAdd, Col(),
          Bin(BinaryOp::kMul, Lit(Value::Int64(2)), Lit(Value::Int64(3)))));
  ASSERT_EQ(e->kind(), ExprKind::kBinary);
  const auto& b = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(b.right().kind(), ExprKind::kLiteral);  // 2*3 folded to 6.
  EXPECT_EQ(b.left().kind(), ExprKind::kColumnRef);

  // Semantics preserved when evaluated.
  Arena arena;
  TupleBuilder builder(&schema_);
  builder.SetInt64(0, 10);
  const uint8_t* row = builder.Finish(&arena);
  EXPECT_EQ(e->Evaluate(TupleView(row, &schema_)), Value::Int64(16));
}

TEST_F(FoldTest, DivisionByZeroFoldsToNull) {
  ExprPtr e = FoldConstants(
      Bin(BinaryOp::kDiv, Lit(Value::Int64(1)), Lit(Value::Int64(0))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(static_cast<const LiteralExpr&>(*e).value().is_null());
}

TEST_F(FoldTest, FoldsUnary) {
  auto neg = MakeUnary(UnaryOp::kNegate, Lit(Value::Int64(5)));
  ASSERT_TRUE(neg.ok());
  ExprPtr e = FoldConstants(std::move(*neg));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*e).value(), Value::Int64(-5));
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "exec/stream_aggregation.h"
#include "exec/topn.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Canonical;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;
using testutil::RunPlan;

TEST(FilterTest, PassesOnlyMatchingRows) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  FilterOperator filter(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      Bin(BinaryOp::kGt, Col(table->schema(), "k"), Lit(Value::Int64(2))));
  auto rows = RunPlan(&filter);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
}

TEST(FilterTest, NullPredicateRowsDropped) {
  Schema schema({{"k", DataType::kInt64}});
  Table table("t", schema);
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Int64(5)});
  FilterOperator filter(
      std::make_unique<SeqScanOperator>(&table, nullptr),
      Bin(BinaryOp::kGt, Col(schema, "k"), Lit(Value::Int64(0))));
  EXPECT_EQ(RunPlan(&filter).size(), 1u);
}

TEST(FilterTest, LabelShowsPredicate) {
  auto table = MakeKvTable("t", {{1, 1}});
  FilterOperator filter(
      std::make_unique<SeqScanOperator>(table.get(), nullptr),
      Bin(BinaryOp::kEq, Col(table->schema(), "k"), Lit(Value::Int64(1))));
  EXPECT_EQ(filter.label(), "Filter((k = 1))");
  EXPECT_EQ(filter.module_id(), sim::ModuleId::kFilter);
}

std::unique_ptr<SortOperator> SortByK(Table* table) {
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), false});
  return std::make_unique<SortOperator>(
      std::make_unique<SeqScanOperator>(table, nullptr), std::move(keys));
}

TEST(StreamAggregationTest, GroupsSortedInput) {
  auto table = MakeKvTable("t", {{2, 20}, {1, 10}, {2, 5}, {1, 1}, {3, 7}});
  const Schema& s = table->schema();
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(s, "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
  StreamAggregationOperator agg(SortByK(table.get()), std::move(groups),
                                std::move(specs));
  auto rows = RunPlan(&agg);
  ASSERT_EQ(rows.size(), 3u);
  // Sorted input -> groups come out in key order.
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[0][1], Value::Double(11));
  EXPECT_EQ(rows[0][2], Value::Int64(2));
  EXPECT_EQ(rows[1][0], Value::Int64(2));
  EXPECT_EQ(rows[1][1], Value::Double(25));
  EXPECT_EQ(rows[2][0], Value::Int64(3));
}

TEST(StreamAggregationTest, MatchesHashAggregation) {
  std::vector<std::pair<int64_t, double>> data;
  for (int i = 0; i < 500; ++i) data.push_back({i % 17, i * 0.25});
  auto table = MakeKvTable("t", data);
  const Schema& s = table->schema();
  auto make_groups = [&s]() {
    std::vector<GroupKeyExpr> g;
    g.push_back(GroupKeyExpr{Col(s, "k"), "k"});
    return g;
  };
  auto make_specs = [&s]() {
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
    specs.push_back(AggSpec{AggFunc::kMin, Col(s, "v"), "min_v"});
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
    return specs;
  };
  StreamAggregationOperator stream(SortByK(table.get()), make_groups(),
                                   make_specs());
  HashAggregationOperator hash(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), make_groups(),
      make_specs());
  EXPECT_EQ(Canonical(RunPlan(&stream)), Canonical(RunPlan(&hash)));
}

TEST(StreamAggregationTest, EmptyInput) {
  auto table = MakeKvTable("t", {});
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(table->schema(), "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  StreamAggregationOperator agg(SortByK(table.get()), std::move(groups),
                                std::move(specs));
  EXPECT_TRUE(RunPlan(&agg).empty());
}

TEST(StreamAggregationTest, SingleGroup) {
  auto table = MakeKvTable("t", {{7, 1}, {7, 2}, {7, 3}});
  const Schema& s = table->schema();
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(s, "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kAvg, Col(s, "v"), "a"});
  StreamAggregationOperator agg(SortByK(table.get()), std::move(groups),
                                std::move(specs));
  auto rows = RunPlan(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Double(2.0));
}

TEST(StreamAggregationTest, IsPipelinedNotBlocking) {
  auto table = MakeKvTable("t", {{1, 1}});
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{Col(table->schema(), "k"), "k"});
  StreamAggregationOperator agg(SortByK(table.get()), std::move(groups), {});
  EXPECT_FALSE(agg.BlocksInput(0));
}

TEST(DistinctTest, RemovesDuplicateRows) {
  auto table = MakeKvTable("t", {{1, 1}, {2, 2}, {1, 1}, {1, 2}, {2, 2}});
  DistinctOperator distinct(
      std::make_unique<SeqScanOperator>(table.get(), nullptr));
  auto rows = RunPlan(&distinct);
  EXPECT_EQ(rows.size(), 3u);  // (1,1), (2,2), (1,2).
  EXPECT_EQ(distinct.num_distinct(), 0u);  // Cleared on Close.
}

TEST(DistinctTest, NullsCompareEqualForDistinct) {
  Schema schema({{"k", DataType::kInt64}});
  Table table("t", schema);
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Null(DataType::kInt64)});
  table.AppendRow({Value::Int64(1)});
  DistinctOperator distinct(std::make_unique<SeqScanOperator>(&table, nullptr));
  EXPECT_EQ(RunPlan(&distinct).size(), 2u);
}

TEST(DistinctTest, StringsDistinguishedByContent) {
  Schema schema({{"s", DataType::kString}});
  Table table("t", schema);
  table.AppendRow({Value::String("ab")});
  table.AppendRow({Value::String("ab")});
  table.AppendRow({Value::String("ba")});
  DistinctOperator distinct(std::make_unique<SeqScanOperator>(&table, nullptr));
  EXPECT_EQ(RunPlan(&distinct).size(), 2u);
}

TEST(TopNTest, KeepsSmallestN) {
  auto table = MakeKvTable("t", {{5, 0}, {1, 0}, {4, 0}, {2, 0}, {3, 0}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), false});
  TopNOperator topn(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    std::move(keys), 3);
  auto rows = RunPlan(&topn);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[1][0], Value::Int64(2));
  EXPECT_EQ(rows[2][0], Value::Int64(3));
}

TEST(TopNTest, DescendingKeepsLargest) {
  auto table = MakeKvTable("t", {{5, 0}, {1, 0}, {4, 0}, {2, 0}, {3, 0}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), true});
  TopNOperator topn(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    std::move(keys), 2);
  auto rows = RunPlan(&topn);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(5));
  EXPECT_EQ(rows[1][0], Value::Int64(4));
}

TEST(TopNTest, LimitLargerThanInput) {
  auto table = MakeKvTable("t", {{2, 0}, {1, 0}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), false});
  TopNOperator topn(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    std::move(keys), 100);
  EXPECT_EQ(RunPlan(&topn).size(), 2u);
}

TEST(TopNTest, LimitZero) {
  auto table = MakeKvTable("t", {{1, 0}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(table->schema(), "k"), false});
  TopNOperator topn(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    std::move(keys), 0);
  EXPECT_TRUE(RunPlan(&topn).empty());
}

TEST(TopNTest, MatchesSortPlusLimitOnRandomInput) {
  std::vector<std::pair<int64_t, double>> data;
  uint64_t state = 7;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    data.push_back({static_cast<int64_t>(state % 500), i * 1.0});
  }
  auto table = MakeKvTable("t", data);
  auto make_keys = [&table]() {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{Col(table->schema(), "k"), false});
    keys.push_back(SortKey{Col(table->schema(), "v"), true});
    return keys;
  };
  TopNOperator topn(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    make_keys(), 25);
  SortOperator sort(std::make_unique<SeqScanOperator>(table.get(), nullptr),
                    make_keys());
  auto expected = RunPlan(&sort);
  expected.resize(25);
  auto got = RunPlan(&topn);
  ASSERT_EQ(got.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(got[i][0], expected[i][0]) << i;
    EXPECT_EQ(got[i][1], expected[i][1]) << i;
  }
  EXPECT_TRUE(topn.BlocksInput(0));
}

}  // namespace
}  // namespace bufferdb

// Companion TU for contract_check_test.cc: force-DISABLES contract
// checking, proving BUFFERDB_WRAP_CONTRACT_CHECKED compiles to the identity
// expression — the Release hot path pays zero overhead (no wrapper object,
// no virtual hop, no state bytes).
#ifdef BUFFERDB_CHECK_CONTRACTS
#undef BUFFERDB_CHECK_CONTRACTS
#endif
#include "exec/contract_check.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "exec/seq_scan.h"
#include "test_util.h"

namespace bufferdb {
namespace {

TEST(ContractCheckReleaseTest, MacroIsIdentityWhenDisabled) {
  auto table = testutil::MakeKvTable("t", {{1, 1.0}});
  auto scan = std::make_unique<SeqScanOperator>(table.get(), nullptr);
  Operator* raw = scan.get();
  OperatorPtr out = BUFFERDB_WRAP_CONTRACT_CHECKED(std::move(scan));
  // Same object comes back: nothing was allocated, nothing wraps the plan.
  EXPECT_EQ(out.get(), raw);
  EXPECT_EQ(dynamic_cast<ContractCheckedOperator*>(out.get()), nullptr);
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_cpu.h"

namespace bufferdb::sim {
namespace {

std::vector<FuncId> Funcs(ModuleId module) {
  auto base = ModuleBaseFuncs(module);
  return std::vector<FuncId>(base.begin(), base.end());
}

TEST(SimCpuTest, RepeatedModuleExecutionHitsAfterWarmup) {
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScanFiltered);
  cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
  uint64_t cold_misses = cpu.counters().l1i_misses;
  EXPECT_GT(cold_misses, 0u);
  for (int i = 0; i < 100; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
  }
  // Footprint (13K) fits in L1I (16K): no further misses.
  EXPECT_EQ(cpu.counters().l1i_misses, cold_misses);
  EXPECT_EQ(cpu.counters().module_calls, 101u);
}

TEST(SimCpuTest, InterleavingLargeModulesThrashes) {
  // Scan(pred) 13K + IndexScan 14K: combined 21.5K > 16K L1I.
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScanFiltered);
  auto index = Funcs(ModuleId::kIndexScan);
  for (int i = 0; i < 10; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kIndexScan, index);
  }
  cpu.ResetCounters();
  const int kIters = 100;
  for (int i = 0; i < kIters; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kIndexScan, index);
  }
  // Thrashing: a significant fraction of each call's lines miss every time.
  uint64_t lines_per_iter = cpu.counters().l1i_accesses / kIters;
  uint64_t misses_per_iter = cpu.counters().l1i_misses / kIters;
  EXPECT_GT(misses_per_iter, lines_per_iter / 3);
}

TEST(SimCpuTest, BufferedPatternBeatsInterleavedPattern) {
  // The Fig. 1 experiment at the simulator level: PCPC... vs PCC...CPP...P.
  auto scan = Funcs(ModuleId::kSeqScanFiltered);
  auto agg_funcs = Funcs(ModuleId::kAggregation);
  agg_funcs.push_back(FuncId::kAggSum);
  agg_funcs.push_back(FuncId::kAggAvgExtra);
  const int kTuples = 5000;

  SimCpu interleaved;
  for (int i = 0; i < kTuples; ++i) {
    interleaved.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    interleaved.ExecuteModuleCall(ModuleId::kAggregation, agg_funcs);
  }

  SimCpu buffered;
  const int kBatch = 500;
  for (int batch = 0; batch < kTuples / kBatch; ++batch) {
    for (int i = 0; i < kBatch; ++i) {
      buffered.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    }
    for (int i = 0; i < kBatch; ++i) {
      buffered.ExecuteModuleCall(ModuleId::kAggregation, agg_funcs);
    }
  }

  EXPECT_LT(buffered.counters().l1i_misses,
            interleaved.counters().l1i_misses / 5);
  EXPECT_LT(buffered.counters().mispredicts,
            interleaved.counters().mispredicts);
  // Same work: identical instruction counts (Table 4's observation).
  EXPECT_EQ(buffered.counters().instructions,
            interleaved.counters().instructions);
  EXPECT_LT(buffered.Breakdown().total_cycles(),
            interleaved.Breakdown().total_cycles());
}

TEST(SimCpuTest, FastPathMatchesSlowPathCounters) {
  // The consecutive-same-module fast path must produce identical counters
  // to an equivalent run that alternates signatures (forcing full probes)
  // when everything fits: compare access counts per call.
  auto buffer_funcs = Funcs(ModuleId::kBuffer);
  SimCpu cpu;
  cpu.ExecuteModuleCall(ModuleId::kBuffer, buffer_funcs);
  uint64_t first_accesses = cpu.counters().l1i_accesses;
  uint64_t first_instructions = cpu.counters().instructions;
  cpu.ExecuteModuleCall(ModuleId::kBuffer, buffer_funcs);
  EXPECT_EQ(cpu.counters().l1i_accesses, 2 * first_accesses);
  EXPECT_EQ(cpu.counters().instructions, 2 * first_instructions);
  EXPECT_EQ(cpu.counters().l1i_misses, first_accesses);  // Only cold misses.
}

TEST(SimCpuTest, SelfThrashingModuleNotFastPathed) {
  // A module larger than L1I must keep missing even when executed
  // back-to-back.
  std::vector<FuncId> huge = {FuncId::kExecCommon, FuncId::kIndexCore,
                              FuncId::kSortCore,   FuncId::kHashBuildCore,
                              FuncId::kExprCmp,    FuncId::kExprArith};
  SimCpu cpu;
  cpu.ExecuteModuleCall(ModuleId::kSort, huge);
  uint64_t cold = cpu.counters().l1i_misses;
  for (int i = 0; i < 10; ++i) cpu.ExecuteModuleCall(ModuleId::kSort, huge);
  EXPECT_GT(cpu.counters().l1i_misses, cold * 5);
}

TEST(SimCpuTest, SequentialDataIsPrefetched) {
  SimCpu cpu;
  // Stream through 1MB sequentially: the stride prefetcher should cover
  // most L2 accesses after the stream is confirmed.
  std::vector<uint8_t> data(1 << 20);
  for (size_t i = 0; i < data.size(); i += 64) {
    cpu.TouchData(data.data() + i, 1);
  }
  EXPECT_GT(cpu.counters().l1d_misses, 0u);
  EXPECT_GT(cpu.counters().l2_prefetch_hits, cpu.counters().l2_misses);
}

TEST(SimCpuTest, PrefetchDisabledMissesMore) {
  SimConfig no_prefetch;
  no_prefetch.hardware_prefetch = false;
  SimCpu off(no_prefetch);
  SimCpu on;
  std::vector<uint8_t> data(1 << 20);
  for (size_t i = 0; i < data.size(); i += 64) {
    off.TouchData(data.data() + i, 1);
    on.TouchData(data.data() + i, 1);
  }
  EXPECT_GT(off.counters().l2_misses, on.counters().l2_misses * 3);
}

TEST(SimCpuTest, TouchDataSpansLines) {
  SimCpu cpu;
  alignas(64) static uint8_t buffer[256];
  cpu.TouchData(buffer, 200);  // 200 bytes from aligned start: 4 lines.
  EXPECT_EQ(cpu.counters().l1d_accesses, 4u);
}

TEST(SimCpuTest, ItlbMissesOnlyCold) {
  // A single module's page working set (strided code layout) fits the
  // 128-entry ITLB: repeated execution adds no misses beyond the cold set.
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScan);
  cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  uint64_t cold = cpu.counters().itlb_misses;
  EXPECT_GT(cold, 16u);  // Many pages: the layout is page-sparse.
  EXPECT_LE(cold, 128u);
  for (int i = 0; i < 50; ++i) cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  EXPECT_EQ(cpu.counters().itlb_misses, cold);
}

TEST(SimCpuTest, InterleavedLargeModulesThrashItlb) {
  // Two large modules exceed the ITLB page capacity when interleaved — the
  // paper's ITLB observation (§7.2: misses drop 86% once buffered).
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScanFiltered);
  auto agg = Funcs(ModuleId::kAggregation);
  agg.push_back(FuncId::kAggSum);
  agg.push_back(FuncId::kAggAvgExtra);
  for (int i = 0; i < 20; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kAggregation, agg);
  }
  cpu.ResetCounters();
  for (int i = 0; i < 20; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kAggregation, agg);
  }
  EXPECT_GT(cpu.counters().itlb_misses, 20u * 20u);
}

TEST(SimCpuTest, ResetRestoresColdState) {
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScan);
  cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  uint64_t cold = cpu.counters().l1i_misses;
  cpu.Reset();
  EXPECT_EQ(cpu.counters().l1i_misses, 0u);
  cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  EXPECT_EQ(cpu.counters().l1i_misses, cold);
}

TEST(SimCpuTest, BreakdownAccountsAllComponents) {
  SimCpu cpu;
  auto scan = Funcs(ModuleId::kSeqScan);
  for (int i = 0; i < 10; ++i) cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  CycleBreakdown b = cpu.Breakdown();
  EXPECT_GT(b.base_cycles, 0.0);
  EXPECT_GT(b.total_cycles(), b.base_cycles);
  EXPECT_GT(b.seconds(), 0.0);
  EXPECT_GT(b.cpi(), 0.0);
  EXPECT_NEAR(b.total_cycles(),
              b.base_cycles + b.l1i_penalty + b.l2_penalty + b.l1d_penalty +
                  b.branch_penalty + b.itlb_penalty,
              1e-6);
}

TEST(SimCountersTest, Arithmetic) {
  SimCounters a;
  a.instructions = 10;
  a.l1i_misses = 3;
  SimCounters b;
  b.instructions = 4;
  b.l1i_misses = 1;
  a += b;
  EXPECT_EQ(a.instructions, 14u);
  SimCounters c = a - b;
  EXPECT_EQ(c.instructions, 10u);
  EXPECT_EQ(c.l1i_misses, 3u);
}

}  // namespace
}  // namespace bufferdb::sim

namespace bufferdb::sim {
namespace {

std::vector<FuncId> ModFuncs(ModuleId module) {
  auto base = ModuleBaseFuncs(module);
  return std::vector<FuncId>(base.begin(), base.end());
}

TEST(SimCpuInvariantTest, MissesNeverExceedAccesses) {
  SimCpu cpu;
  auto scan = ModFuncs(ModuleId::kSeqScanFiltered);
  auto sort = ModFuncs(ModuleId::kSort);
  std::vector<uint8_t> data(1 << 18);
  for (int i = 0; i < 200; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kSort, sort);
    cpu.TouchData(data.data() + (i * 997) % data.size(), 100);
  }
  const SimCounters& c = cpu.counters();
  EXPECT_LE(c.l1i_misses, c.l1i_accesses);
  EXPECT_LE(c.l1d_misses, c.l1d_accesses);
  EXPECT_LE(c.l2_misses, c.l2_accesses);
  EXPECT_LE(c.mispredicts, c.branches);
  EXPECT_LE(c.itlb_misses, c.itlb_accesses);
  EXPECT_GT(c.instructions, 0u);
}

TEST(SimCpuInvariantTest, L2AccessesAccountForL1Misses) {
  // Every L2 access originates from an L1-I or L1-D miss.
  SimCpu cpu;
  auto scan = ModFuncs(ModuleId::kSeqScanFiltered);
  auto sort = ModFuncs(ModuleId::kSort);
  std::vector<uint8_t> data(1 << 16);
  for (int i = 0; i < 100; ++i) {
    cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
    cpu.ExecuteModuleCall(ModuleId::kSort, sort);
    cpu.TouchData(data.data() + (i * 4093) % data.size(), 64);
  }
  const SimCounters& c = cpu.counters();
  EXPECT_EQ(c.l2_accesses, c.l1i_misses + c.l1d_misses);
  EXPECT_LE(c.l2_i_misses, c.l2_misses);
}

TEST(SimCpuInvariantTest, InstructionCountScalesWithFootprint) {
  SimCpu cpu;
  auto buffer = ModFuncs(ModuleId::kBuffer);   // 500 bytes.
  auto scan = ModFuncs(ModuleId::kSeqScan);    // 9000 bytes.
  cpu.ExecuteModuleCall(ModuleId::kBuffer, buffer);
  uint64_t small = cpu.counters().instructions;
  cpu.ResetCounters();
  cpu.ExecuteModuleCall(ModuleId::kSeqScan, scan);
  uint64_t big = cpu.counters().instructions;
  EXPECT_EQ(small, 500u / 4u * cpu.config().insn_repeat);
  EXPECT_EQ(big, 9000u / 4u * cpu.config().insn_repeat);
}

TEST(SimCpuInvariantTest, InstructionSideIsAddressIndependentDeterministic) {
  // Two separately constructed CPUs fed the same module stream agree on
  // every instruction-side counter.
  auto run = [] {
    SimCpu cpu;
    auto scan = ModFuncs(ModuleId::kSeqScanFiltered);
    auto agg = ModFuncs(ModuleId::kAggregation);
    for (int i = 0; i < 500; ++i) {
      cpu.ExecuteModuleCall(ModuleId::kSeqScanFiltered, scan);
      cpu.ExecuteModuleCall(ModuleId::kAggregation, agg);
    }
    return cpu.counters();
  };
  SimCounters a = run();
  SimCounters b = run();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1i_misses, b.l1i_misses);
  EXPECT_EQ(a.mispredicts, b.mispredicts);
  EXPECT_EQ(a.itlb_misses, b.itlb_misses);
}

}  // namespace
}  // namespace bufferdb::sim

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/cache.h"

namespace bufferdb::sim {
namespace {

TEST(SetAssocCacheTest, FirstAccessMissesThenHits) {
  SetAssocCache cache({1024, 64, 2});
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(63));   // Same line.
  EXPECT_FALSE(cache.Access(64));  // Next line.
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SetAssocCacheTest, WorkingSetWithinCapacityAllHitsAfterWarmup) {
  SetAssocCache cache({16 * 1024, 64, 8});
  for (uint64_t a = 0; a < 16 * 1024; a += 64) cache.Access(a);
  cache.ResetStats();
  for (int round = 0; round < 4; ++round) {
    for (uint64_t a = 0; a < 16 * 1024; a += 64) cache.Access(a);
  }
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SetAssocCacheTest, CyclicOverCapacityThrashesWithLru) {
  // Classic LRU pathology: sequential loop over capacity+1 sets misses
  // every access.
  SetAssocCache cache({1024, 64, 2});  // 16 lines.
  const uint64_t lines = 32;           // 2x capacity.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t l = 0; l < lines; ++l) cache.Access(l * 64);
  }
  // After warmup rounds, miss rate remains 100%.
  cache.ResetStats();
  for (uint64_t l = 0; l < lines; ++l) cache.Access(l * 64);
  EXPECT_EQ(cache.stats().misses, lines);
}

TEST(SetAssocCacheTest, LruEvictsLeastRecentlyUsed) {
  // 1 set, 2 ways, 64B lines: addresses 0, S, 2S map to the same set where
  // S = sets*64. With sets = capacity/(64*2) = 1.
  SetAssocCache cache({128, 64, 2});
  EXPECT_EQ(cache.num_sets(), 1u);
  cache.Access(0);    // Miss, resident: {0}
  cache.Access(64);   // Miss, resident: {0, 64}
  cache.Access(0);    // Hit, 64 is now LRU.
  cache.Access(128);  // Miss, evicts 64.
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(64));
  EXPECT_TRUE(cache.Contains(128));
}

TEST(SetAssocCacheTest, PrefetchInsertsWithoutMissCount) {
  SetAssocCache cache({1024, 64, 2});
  cache.Prefetch(256);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().prefetches_issued, 1u);
  EXPECT_TRUE(cache.Contains(256));
  EXPECT_TRUE(cache.Access(256));  // Demand hit on prefetched line.
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
  // Second access is an ordinary hit.
  cache.Access(256);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
}

TEST(SetAssocCacheTest, FlushEmptiesCache) {
  SetAssocCache cache({1024, 64, 2});
  cache.Access(0);
  cache.Flush();
  EXPECT_FALSE(cache.Contains(0));
}

class CacheCapacityTest : public ::testing::TestWithParam<uint64_t> {};

// Property: a working set equal to the cache capacity always fits
// (fully-utilizable capacity with uniform line mapping), a working set of
// twice the capacity cyclically scanned always thrashes.
TEST_P(CacheCapacityTest, CapacityBoundary) {
  uint64_t capacity = GetParam();
  SetAssocCache cache({capacity, 64, 8});
  uint64_t lines_in = capacity / 64;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t l = 0; l < lines_in; ++l) cache.Access(l * 64);
  }
  cache.ResetStats();
  for (uint64_t l = 0; l < lines_in; ++l) cache.Access(l * 64);
  EXPECT_EQ(cache.stats().misses, 0u) << "capacity " << capacity;

  SetAssocCache small(CacheGeometry{capacity, 64, 8});
  for (int round = 0; round < 3; ++round) {
    for (uint64_t l = 0; l < 2 * lines_in; ++l) small.Access(l * 64);
  }
  small.ResetStats();
  for (uint64_t l = 0; l < 2 * lines_in; ++l) small.Access(l * 64);
  EXPECT_EQ(small.stats().misses, 2 * lines_in) << "capacity " << capacity;
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityTest,
                         ::testing::Values(1024, 4096, 16384, 65536, 262144));

TEST(ItlbTest, HitsWithinPage) {
  Itlb itlb(4, 4096);
  EXPECT_FALSE(itlb.Access(0));
  // Fast path: consecutive same-page accesses don't even count.
  EXPECT_TRUE(itlb.Access(100));
  EXPECT_TRUE(itlb.Access(4095));
  EXPECT_EQ(itlb.misses(), 1u);
}

TEST(ItlbTest, LruWithinSet) {
  // 4 entries, one set of 4 ways: the fifth distinct page evicts the LRU.
  Itlb itlb(4, 4096);
  for (uint64_t p = 0; p < 4; ++p) itlb.Access(p * 4096);  // 4 misses.
  EXPECT_TRUE(itlb.Access(0 * 4096));  // Hit; page 1 is now LRU.
  itlb.Access(9 * 4096);               // Miss, evicts page 1.
  EXPECT_FALSE(itlb.Access(1 * 4096));
  EXPECT_EQ(itlb.misses(), 6u);
}

TEST(ItlbTest, FlushForgetsPages) {
  Itlb itlb(8, 4096);
  itlb.Access(0);
  itlb.Flush();
  EXPECT_FALSE(itlb.Access(0));
}

}  // namespace
}  // namespace bufferdb::sim

namespace fa {

TEST(FullyAssocLruCacheTest, BasicHitMiss) {
  bufferdb::sim::FullyAssocLruCache cache(4 * 64, 64);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(63));
  EXPECT_FALSE(cache.Access(64));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().accesses, 4u);
}

TEST(FullyAssocLruCacheTest, ExactCapacityFits) {
  bufferdb::sim::FullyAssocLruCache cache(256 * 64, 64);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t l = 0; l < 256; ++l) cache.Access(l * 64);
  }
  cache.ResetStats();
  for (uint64_t l = 0; l < 256; ++l) cache.Access(l * 64);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(FullyAssocLruCacheTest, CapacityPlusOneCyclicThrashes) {
  bufferdb::sim::FullyAssocLruCache cache(256 * 64, 64);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t l = 0; l < 257; ++l) cache.Access(l * 64);
  }
  cache.ResetStats();
  for (uint64_t l = 0; l < 257; ++l) cache.Access(l * 64);
  EXPECT_EQ(cache.stats().misses, 257u);  // LRU pathology, as intended.
}

TEST(FullyAssocLruCacheTest, LruOrder) {
  bufferdb::sim::FullyAssocLruCache cache(2 * 64, 64);
  cache.Access(0);
  cache.Access(64);
  cache.Access(0);    // 64 becomes LRU.
  cache.Access(128);  // Evicts 64.
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(64));
  EXPECT_TRUE(cache.Contains(128));
}

TEST(FullyAssocLruCacheTest, PrefetchCountsOnFirstDemandHit) {
  bufferdb::sim::FullyAssocLruCache cache(8 * 64, 64);
  cache.Prefetch(64);
  EXPECT_EQ(cache.stats().prefetches_issued, 1u);
  EXPECT_TRUE(cache.Access(64));
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
  cache.Access(64);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
}

TEST(FullyAssocLruCacheTest, FlushResetsResidency) {
  bufferdb::sim::FullyAssocLruCache cache(8 * 64, 64);
  cache.Access(0);
  cache.Flush();
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_FALSE(cache.Access(0));
}

// Model-based property test: random access stream checked against a naive
// LRU reference implementation.
class FullyAssocModelTest : public ::testing::TestWithParam<int> {};

TEST_P(FullyAssocModelTest, MatchesNaiveLru) {
  const int capacity = GetParam();
  bufferdb::sim::FullyAssocLruCache cache(
      static_cast<uint64_t>(capacity) * 64, 64);
  std::vector<uint64_t> model;  // Front = MRU; naive O(n) LRU list.
  bufferdb::Rng rng(capacity * 31u);
  for (int i = 0; i < 20000; ++i) {
    uint64_t line = static_cast<uint64_t>(rng.Uniform(0, capacity * 2));
    bool hit = cache.Access(line * 64);
    auto it = std::find(model.begin(), model.end(), line);
    bool model_hit = it != model.end();
    ASSERT_EQ(hit, model_hit) << "step " << i << " line " << line;
    if (model_hit) model.erase(it);
    model.insert(model.begin(), line);
    if (model.size() > static_cast<size_t>(capacity)) model.pop_back();
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, FullyAssocModelTest,
                         ::testing::Values(1, 2, 7, 32, 256));

}  // namespace fa

// Unit tests for the parallel building blocks: ThreadPool (startup,
// shutdown, exception propagation), MorselCursor (no lost or duplicated
// morsels under contention) and the bounded MPSC TupleQueue.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/morsel.h"
#include "parallel/thread_pool.h"
#include "parallel/tuple_queue.h"

namespace bufferdb::parallel {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_run(), 100u);
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> started{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Submit([&] {
      ++started;
      // Hold the task until all four are in flight, forcing distinct
      // threads to pick them up.
      while (started.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto after = pool.Submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // Destructor joins after draining the queue.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, RepeatedStartupShutdown) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    auto f = pool.Submit([] {});
    f.get();
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 2u);
}

TEST(MorselCursorTest, SingleThreadCoversTableExactly) {
  MorselCursor cursor(10001, 100);
  size_t covered = 0;
  size_t expected_begin = 0;
  Morsel m;
  while (cursor.TryNext(&m)) {
    EXPECT_EQ(m.begin, expected_begin);
    EXPECT_GT(m.end, m.begin);
    EXPECT_LE(m.end - m.begin, 100u);
    covered += m.end - m.begin;
    expected_begin = m.end;
  }
  EXPECT_EQ(covered, 10001u);
  EXPECT_FALSE(cursor.TryNext(&m));  // Stays exhausted.
}

TEST(MorselCursorTest, EmptyTable) {
  MorselCursor cursor(0, 100);
  Morsel m;
  EXPECT_FALSE(cursor.TryNext(&m));
}

TEST(MorselCursorTest, ResetRewinds) {
  MorselCursor cursor(100, 64);
  Morsel m;
  while (cursor.TryNext(&m)) {
  }
  cursor.Reset();
  ASSERT_TRUE(cursor.TryNext(&m));
  EXPECT_EQ(m.begin, 0u);
}

TEST(MorselCursorTest, NoLostOrDuplicatedMorselsUnderContention) {
  constexpr size_t kTotal = 1 << 20;
  constexpr size_t kMorsel = 64;
  constexpr int kThreads = 8;
  MorselCursor cursor(kTotal, kMorsel);

  std::vector<std::vector<Morsel>> claimed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cursor, &claimed, t] {
      Morsel m;
      while (cursor.TryNext(&m)) claimed[static_cast<size_t>(t)].push_back(m);
    });
  }
  for (auto& th : threads) th.join();

  std::vector<Morsel> all;
  for (const auto& v : claimed) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Morsel& a, const Morsel& b) { return a.begin < b.begin; });
  size_t expected_begin = 0;
  for (const Morsel& m : all) {
    ASSERT_EQ(m.begin, expected_begin);  // No gap, no overlap.
    expected_begin = m.end;
  }
  EXPECT_EQ(expected_begin, kTotal);
}

TEST(TupleQueueTest, FifoWithinSingleProducer) {
  TupleQueue queue(4);
  queue.AddProducer();
  uint8_t data[3];
  queue.Push({&data[0]});
  queue.Push({&data[1], &data[2]});
  queue.ProducerDone();

  TupleQueue::Batch batch;
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, TupleQueue::Batch{&data[0]});
  ASSERT_TRUE(queue.Pop(&batch));
  EXPECT_EQ(batch, (TupleQueue::Batch{&data[1], &data[2]}));
  EXPECT_FALSE(queue.Pop(&batch));  // Drained and no producers left.
}

TEST(TupleQueueTest, PopReturnsFalseWhenNoProducersRegistered) {
  TupleQueue queue(4);
  TupleQueue::Batch batch;
  EXPECT_FALSE(queue.Pop(&batch));
}

TEST(TupleQueueTest, BoundAppliesBackpressureAndCancelUnblocks) {
  TupleQueue queue(1);
  queue.AddProducer();
  uint8_t data[1];
  ASSERT_TRUE(queue.Push({&data[0]}));  // Queue now full.

  std::atomic<bool> blocked_push_returned{false};
  std::atomic<bool> blocked_push_result{true};
  std::thread producer([&] {
    blocked_push_result = queue.Push({&data[0]});  // Blocks: queue is full.
    blocked_push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_push_returned.load());

  queue.Cancel();
  producer.join();
  EXPECT_TRUE(blocked_push_returned.load());
  EXPECT_FALSE(blocked_push_result.load());  // Cancelled push reports failure.

  TupleQueue::Batch batch;
  EXPECT_FALSE(queue.Pop(&batch));  // Pops fail after cancel too.
}

TEST(TupleQueueTest, ManyProducersAllRowsArrive) {
  constexpr int kProducers = 8;
  constexpr int kBatchesEach = 100;
  TupleQueue queue(4);
  for (int p = 0; p < kProducers; ++p) queue.AddProducer();

  static uint8_t cell;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue] {
      for (int i = 0; i < kBatchesEach; ++i) {
        if (!queue.Push({&cell, &cell})) break;
      }
      queue.ProducerDone();
    });
  }
  size_t rows = 0;
  TupleQueue::Batch batch;
  while (queue.Pop(&batch)) rows += batch.size();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rows, static_cast<size_t>(kProducers) * kBatchesEach * 2);
}

}  // namespace
}  // namespace bufferdb::parallel

// ExchangeOperator correctness: parallel plans must produce the same
// (order-insensitive) results as the single-threaded plan at every degree,
// for scan→filter→aggregate pipelines and partitioned join plans, with and
// without per-worker buffering (ISSUE acceptance criteria).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/aggregation.h"
#include "exec/seq_scan.h"
#include "parallel/agg_merge.h"
#include "parallel/exchange.h"
#include "parallel/morsel.h"
#include "parallel/thread_pool.h"
#include "plan/physical_planner.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Canonical;
using testutil::RunPlan;

constexpr char kScanFilterAgg[] =
    "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS charge, "
    "AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order, "
    "MIN(l_quantity) AS min_qty, MAX(l_quantity) AS max_qty "
    "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'";

constexpr char kProjection[] =
    "SELECT l_orderkey, l_quantity FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-09-02'";

constexpr char kJoinProjection[] =
    "SELECT l_orderkey, o_totalprice FROM lineitem, orders "
    "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";

constexpr char kGroupedCount[] =
    "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
    "GROUP BY l_returnflag";

class ExchangeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  std::vector<std::vector<Value>> RunSql(const std::string& sql,
                                         PlannerOptions options = {}) {
    OperatorPtr plan = MustPlan(sql, options);
    return RunPlan(plan.get());
  }

  // Asserts row-set equality with a small relative tolerance on doubles
  // (parallel summation order is nondeterministic, so double aggregates can
  // differ from the serial plan in the last ulp).
  static void ExpectRowsNear(const std::vector<std::vector<Value>>& serial,
                             const std::vector<std::vector<Value>>& parallel) {
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t r = 0; r < serial.size(); ++r) {
      ASSERT_EQ(serial[r].size(), parallel[r].size());
      for (size_t c = 0; c < serial[r].size(); ++c) {
        const Value& a = serial[r][c];
        const Value& b = parallel[r][c];
        ASSERT_EQ(a.is_null(), b.is_null()) << "row " << r << " col " << c;
        if (a.is_null()) continue;
        if (a.type() == DataType::kDouble) {
          double tolerance = 1e-9 * (1.0 + std::abs(a.double_value()));
          EXPECT_NEAR(a.double_value(), b.double_value(), tolerance)
              << "row " << r << " col " << c;
        } else {
          EXPECT_EQ(Value::Compare(a, b), 0)
              << "row " << r << " col " << c << ": " << a.ToString()
              << " vs " << b.ToString();
        }
      }
    }
  }

  static Catalog* catalog_;
};

Catalog* ExchangeTest::catalog_ = nullptr;

TEST_F(ExchangeTest, ScanFilterAggMatchesSerialAtAllDegrees) {
  auto serial = RunSql(kScanFilterAgg);
  ASSERT_EQ(serial.size(), 1u);
  for (size_t degree : {1u, 2u, 8u}) {
    PlannerOptions options;
    options.parallel_degree = degree;
    auto parallel = RunSql(kScanFilterAgg, options);
    ExpectRowsNear(serial, parallel);
  }
}

TEST_F(ExchangeTest, ProjectionMatchesSerialAtAllDegrees) {
  auto serial = Canonical(RunSql(kProjection));
  ASSERT_GT(serial.size(), 1000u);
  for (size_t degree : {2u, 8u}) {
    PlannerOptions options;
    options.parallel_degree = degree;
    options.morsel_rows = 256;  // Force many morsels even at this scale.
    EXPECT_EQ(Canonical(RunSql(kProjection, options)), serial)
        << "degree " << degree;
  }
}

TEST_F(ExchangeTest, HashJoinMatchesSerialAtAllDegrees) {
  PlannerOptions serial_options;
  serial_options.join_strategy = JoinStrategy::kHashJoin;
  auto serial = Canonical(RunSql(kJoinProjection, serial_options));
  ASSERT_GT(serial.size(), 100u);
  for (size_t degree : {2u, 8u}) {
    PlannerOptions options;
    options.join_strategy = JoinStrategy::kHashJoin;
    options.parallel_degree = degree;
    options.morsel_rows = 512;
    EXPECT_EQ(Canonical(RunSql(kJoinProjection, options)), serial)
        << "degree " << degree;
  }
}

TEST_F(ExchangeTest, IndexNestLoopJoinMatchesSerial) {
  PlannerOptions serial_options;
  serial_options.join_strategy = JoinStrategy::kIndexNestLoop;
  auto serial = Canonical(RunSql(kJoinProjection, serial_options));
  PlannerOptions options = serial_options;
  options.parallel_degree = 4;
  EXPECT_EQ(Canonical(RunSql(kJoinProjection, options)), serial);
}

TEST_F(ExchangeTest, MergeJoinMatchesSerial) {
  // Each fragment sorts only its own morsel partition before the merge
  // join; the union across fragments must still equal the serial join.
  PlannerOptions serial_options;
  serial_options.join_strategy = JoinStrategy::kMergeJoin;
  auto serial = Canonical(RunSql(kJoinProjection, serial_options));
  PlannerOptions options = serial_options;
  options.parallel_degree = 4;
  EXPECT_EQ(Canonical(RunSql(kJoinProjection, options)), serial);
}

TEST_F(ExchangeTest, GroupedAggregationAboveExchangeMatchesSerial) {
  auto serial = Canonical(RunSql(kGroupedCount));
  for (size_t degree : {2u, 8u}) {
    PlannerOptions options;
    options.parallel_degree = degree;
    EXPECT_EQ(Canonical(RunSql(kGroupedCount, options)), serial)
        << "degree " << degree;
  }
}

TEST_F(ExchangeTest, RefinementPlacesBuffersInsideFragments) {
  PlannerOptions options;
  options.parallel_degree = 4;
  options.refine = true;
  OperatorPtr plan = MustPlan(kScanFilterAgg, options);
  std::string text = PrintPlan(*plan);
  size_t exchange_at = text.find("Exchange(");
  ASSERT_NE(exchange_at, std::string::npos) << text;
  // Per-worker buffering: each of the 4 fragments gets its own Buffer
  // below the Exchange, and none sits above it.
  size_t buffers = 0;
  for (size_t at = text.find("Buffer("); at != std::string::npos;
       at = text.find("Buffer(", at + 1)) {
    EXPECT_GT(at, exchange_at) << "buffer above the Exchange:\n" << text;
    ++buffers;
  }
  EXPECT_EQ(buffers, 4u) << text;

  auto serial = RunSql(kScanFilterAgg);
  ExpectRowsNear(serial, RunPlan(plan.get()));
}

TEST_F(ExchangeTest, ReExecutionProducesSameResult) {
  PlannerOptions options;
  options.parallel_degree = 4;
  OperatorPtr plan = MustPlan(kScanFilterAgg, options);
  auto first = RunPlan(plan.get());
  auto second = RunPlan(plan.get());  // Open/drain/Close a second time.
  ExpectRowsNear(first, second);
}

TEST_F(ExchangeTest, PrivateThreadPool) {
  parallel::ThreadPool pool(2);
  PlannerOptions options;
  options.parallel_degree = 4;  // More fragments than pool threads.
  options.thread_pool = &pool;
  auto serial = RunSql(kScanFilterAgg);
  ExpectRowsNear(serial, RunSql(kScanFilterAgg, options));
  EXPECT_GE(pool.tasks_run(), 4u);
}

// -- Direct operator-level tests (no SQL front end). --------------------

TEST(MorselScanTest, MorselModeCoversWholeTable) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t i = 0; i < 1000; ++i) rows.push_back({i, i * 0.5});
  auto table = testutil::MakeKvTable("t", rows);

  parallel::MorselCursor cursor(table->num_rows(), 64);
  SeqScanOperator scan(table.get(), nullptr);
  scan.BindMorselCursor(&cursor);

  ExecContext ctx;
  auto result = ExecutePlan(&scan, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1000u);
}

TEST(MorselScanTest, TwoScansSharingOneCursorPartitionTheTable) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t i = 0; i < 1000; ++i) rows.push_back({i, 0.0});
  auto table = testutil::MakeKvTable("t", rows);

  parallel::MorselCursor cursor(table->num_rows(), 128);
  SeqScanOperator a(table.get(), nullptr);
  SeqScanOperator b(table.get(), nullptr);
  a.BindMorselCursor(&cursor);
  b.BindMorselCursor(&cursor);

  ExecContext ctx_a, ctx_b;
  ASSERT_TRUE(a.Open(&ctx_a).ok());
  ASSERT_TRUE(b.Open(&ctx_b).ok());
  std::set<const uint8_t*> seen;
  // Interleave the two consumers; each row must surface exactly once.
  bool a_done = false, b_done = false;
  while (!a_done || !b_done) {
    if (!a_done) {
      const uint8_t* row = a.Next();
      if (row == nullptr) {
        a_done = true;
      } else {
        EXPECT_TRUE(seen.insert(row).second);
      }
    }
    if (!b_done) {
      const uint8_t* row = b.Next();
      if (row == nullptr) {
        b_done = true;
      } else {
        EXPECT_TRUE(seen.insert(row).second);
      }
    }
  }
  a.Close();
  b.Close();
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(AggregateMergeTest, EmptyInputYieldsSqlNullSemantics) {
  auto table = testutil::MakeKvTable("t", {{1, 1.5}, {2, 2.5}});
  const Schema& schema = table->schema();

  std::vector<AggSpec> final_specs;
  final_specs.push_back(
      AggSpec{AggFunc::kMin, testutil::Col(schema, "v"), "min_v"});
  final_specs.push_back(
      AggSpec{AggFunc::kMax, testutil::Col(schema, "v"), "max_v"});
  final_specs.push_back(
      AggSpec{AggFunc::kAvg, testutil::Col(schema, "v"), "avg_v"});
  final_specs.push_back(
      AggSpec{AggFunc::kSum, testutil::Col(schema, "v"), "sum_v"});
  final_specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});

  auto cursor = std::make_unique<parallel::MorselCursor>(table->num_rows(), 1);
  std::vector<OperatorPtr> fragments;
  for (int w = 0; w < 3; ++w) {
    // Predicate k < 0 rejects every row: every partial is the empty input.
    ExprPtr pred = testutil::Bin(BinaryOp::kLt, testutil::Col(schema, "k"),
                                 testutil::Lit(Value::Int64(0)));
    auto scan = std::make_unique<SeqScanOperator>(table.get(),
                                                  std::move(pred));
    scan->BindMorselCursor(cursor.get());
    fragments.push_back(std::make_unique<AggregationOperator>(
        std::move(scan), parallel::MakePartialAggSpecs(final_specs)));
  }
  auto exchange = std::make_unique<parallel::ExchangeOperator>(
      std::move(fragments), std::move(cursor));
  parallel::AggregateMergeOperator merge(std::move(exchange),
                                         std::move(final_specs));

  auto rows = RunPlan(&merge);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());  // MIN
  EXPECT_TRUE(rows[0][1].is_null());  // MAX
  EXPECT_TRUE(rows[0][2].is_null());  // AVG
  EXPECT_TRUE(rows[0][3].is_null());  // SUM
  EXPECT_EQ(rows[0][4].int64_value(), 0);  // COUNT(*)
}

namespace {

// Operator whose Open always fails; exercises worker error propagation.
class FailingOperator final : public Operator {
 public:
  explicit FailingOperator(const Schema* schema) : schema_(schema) {}
  Status Open(ExecContext*) override {
    return Status::Internal("injected fragment failure");
  }
  const uint8_t* Next() override { return nullptr; }
  void Close() override {}
  const Schema& output_schema() const override { return *schema_; }
  sim::ModuleId module_id() const override { return sim::ModuleId::kSeqScan; }

 private:
  const Schema* schema_;
};

}  // namespace

TEST(ExchangeErrorTest, FragmentOpenFailureIsReported) {
  auto table = testutil::MakeKvTable("t", {{1, 1.0}});
  std::vector<OperatorPtr> fragments;
  fragments.push_back(std::make_unique<FailingOperator>(&table->schema()));
  fragments.push_back(std::make_unique<FailingOperator>(&table->schema()));
  parallel::ExchangeOperator exchange(std::move(fragments), nullptr);

  ExecContext ctx;
  ASSERT_TRUE(exchange.Open(&ctx).ok());
  EXPECT_EQ(exchange.Next(), nullptr);
  exchange.Close();
  EXPECT_FALSE(exchange.error().ok());
  EXPECT_EQ(exchange.error().code(), StatusCode::kInternal);
}

TEST(ExchangeErrorTest, EarlyCloseDoesNotDeadlock) {
  // A consumer that abandons the stream (e.g. LIMIT) must not leave
  // producers blocked on the bounded queue.
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t i = 0; i < 100000; ++i) rows.push_back({i, 0.0});
  auto table = testutil::MakeKvTable("t", rows);

  auto cursor = std::make_unique<parallel::MorselCursor>(table->num_rows(),
                                                         256);
  std::vector<OperatorPtr> fragments;
  for (int w = 0; w < 4; ++w) {
    auto scan = std::make_unique<SeqScanOperator>(table.get(), nullptr);
    scan->BindMorselCursor(cursor.get());
    fragments.push_back(std::move(scan));
  }
  parallel::ExchangeOperator exchange(std::move(fragments), std::move(cursor),
                                      nullptr, /*batch_rows=*/64,
                                      /*queue_batches=*/2);
  ExecContext ctx;
  ASSERT_TRUE(exchange.Open(&ctx).ok());
  for (int i = 0; i < 10; ++i) ASSERT_NE(exchange.Next(), nullptr);
  exchange.Close();  // Workers must unblock and join.
  EXPECT_TRUE(exchange.error().ok());
}

TEST(ExchangeSimulationTest, FragmentSimulationCountsPerWorker) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t i = 0; i < 10000; ++i) rows.push_back({i, 0.0});
  auto table = testutil::MakeKvTable("t", rows);

  auto cursor = std::make_unique<parallel::MorselCursor>(table->num_rows(),
                                                         512);
  std::vector<OperatorPtr> fragments;
  for (int w = 0; w < 2; ++w) {
    auto scan = std::make_unique<SeqScanOperator>(table.get(), nullptr);
    scan->BindMorselCursor(cursor.get());
    fragments.push_back(std::move(scan));
  }
  parallel::ExchangeOperator exchange(std::move(fragments), std::move(cursor));
  exchange.EnableFragmentSimulation(sim::SimConfig());

  ExecContext ctx;
  auto result = ExecutePlan(&exchange, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10000u);
  uint64_t instructions = 0;
  for (size_t w = 0; w < exchange.degree(); ++w) {
    ASSERT_NE(exchange.fragment_cpu(w), nullptr);
    instructions += exchange.fragment_cpu(w)->counters().instructions;
  }
  EXPECT_GT(instructions, 0u);
}

}  // namespace
}  // namespace bufferdb

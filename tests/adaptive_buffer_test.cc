// Runtime-adaptive buffering (DESIGN.md §14): the controller's calibrate ->
// lock / demote state machine, the Rescan-miss capacity growth, and — the
// acceptance bar — result identity between adaptive and static plans across
// batch widths and Exchange degrees. The adaptive machinery may change *how*
// tuples flow (capacities, pass-through, replays) but never *which* tuples.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive_buffer.h"
#include "core/buffer_operator.h"
#include "exec/seq_scan.h"
#include "plan/physical_planner.h"
#include "sim/sim_cpu.h"
#include "sql/binder.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Canonical;
using testutil::MakeKvTable;
using testutil::RunPlan;

std::unique_ptr<Table> SequentialTable(int n) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int i = 0; i < n; ++i) rows.push_back({i, i * 0.5});
  return MakeKvTable("t", rows);
}

AdaptiveBufferOptions SmallSweep() {
  AdaptiveBufferOptions options;
  options.min_capacity = 4;
  options.max_capacity = 64;
  options.min_calibration_tuples = 16;
  return options;
}

TEST(AdaptiveBufferControllerTest, CalibratesLocksAndFreezes) {
  auto table = SequentialTable(2000);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 8);
  buffer.EnableAdaptive(SmallSweep());
  sim::SimCpu cpu;
  ExecContext ctx;
  ctx.cpu = &cpu;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  size_t i = 0;
  for (const uint8_t* row; (row = buffer.Next()) != nullptr; ++i) {
    ASSERT_EQ(row, table->row(i)) << "tuple " << i;
  }
  EXPECT_EQ(i, 2000u);
  const AdaptiveBufferController* c = buffer.controller();
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->locked());
  EXPECT_GT(c->windows_measured(), 0);
  EXPECT_GE(c->chosen_capacity(), 4u);
  EXPECT_LE(c->chosen_capacity(), 64u);
  buffer.Close();

  // Frozen re-Open: the locked choice is served without re-calibrating.
  int windows_before = c->windows_measured();
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  EXPECT_EQ(buffer.buffer_size(), c->chosen_capacity());
  for (i = 0; buffer.Next() != nullptr; ++i) {
  }
  EXPECT_EQ(i, 2000u);
  EXPECT_EQ(c->windows_measured(), windows_before);
  buffer.Close();
}

TEST(AdaptiveBufferControllerTest, ShortStreamDemotesToPassThrough) {
  auto table = SequentialTable(20);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 8);
  AdaptiveBufferOptions options = SmallSweep();
  options.demote_row_floor = 128.0;
  buffer.EnableAdaptive(options);
  ExecContext ctx;  // wall-clock signal: demotion is cardinality-driven.
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  size_t i = 0;
  while (buffer.Next() != nullptr) ++i;
  ASSERT_EQ(i, 20u);
  EXPECT_TRUE(buffer.controller()->demoted());
  EXPECT_FALSE(buffer.pass_through());  // demotion applies at the next Open
  buffer.Close();

  ASSERT_TRUE(buffer.Open(&ctx).ok());
  EXPECT_TRUE(buffer.pass_through());
  // Pass-through still hands out the child's own rows, in order.
  const uint8_t* row;
  for (i = 0; (row = buffer.Next()) != nullptr; ++i) {
    ASSERT_EQ(row, table->row(i));
  }
  EXPECT_EQ(i, 20u);
  EXPECT_EQ(buffer.refills(), 0u);  // the array was never touched
  buffer.Close();
}

TEST(AdaptiveBufferControllerTest, RescanMissGrowsCapacityUntilReplay) {
  // The nested-loop shape: a parent rescans the buffered stream repeatedly.
  // The first failed replay teaches the controller the stream's exact
  // length; from then on the array holds the whole stream and every further
  // Rescan replays without re-executing the child.
  auto table = SequentialTable(20);
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 8);
  buffer.EnableAdaptive(SmallSweep());
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  auto drain = [&] {
    size_t n = 0;
    for (const uint8_t* row; (row = buffer.Next()) != nullptr; ++n) {
      EXPECT_EQ(row, table->row(n));
    }
    return n;
  };
  ASSERT_EQ(drain(), 20u);           // pass 1: multi-refill, end observed
  ASSERT_TRUE(buffer.Rescan().ok()); // replay impossible -> miss feedback
  EXPECT_EQ(buffer.controller()->chosen_capacity(), 21u);  // stream + 1
  EXPECT_TRUE(buffer.controller()->locked());
  ASSERT_EQ(drain(), 20u);           // pass 2: re-executed, single refill
  EXPECT_EQ(buffer.refills(), 1u);
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(buffer.Rescan().ok());
    ASSERT_EQ(drain(), 20u);         // passes 3+: replayed from the array
  }
  EXPECT_EQ(buffer.replays(), 3u);
  EXPECT_EQ(buffer.refills(), 1u);   // the child never ran again
  buffer.Close();
}

TEST(AdaptiveBufferControllerTest, MissBeyondMaxCapacityLeavesChoiceAlone) {
  auto table = SequentialTable(200);  // 200 + 1 > max_capacity 64
  BufferOperator buffer(
      std::make_unique<SeqScanOperator>(table.get(), nullptr), 8);
  buffer.EnableAdaptive(SmallSweep());
  ExecContext ctx;
  ASSERT_TRUE(buffer.Open(&ctx).ok());
  size_t n = 0;
  while (buffer.Next() != nullptr) ++n;
  ASSERT_EQ(n, 200u);
  ASSERT_TRUE(buffer.Rescan().ok());
  EXPECT_LE(buffer.controller()->chosen_capacity(), 64u);
  n = 0;
  while (buffer.Next() != nullptr) ++n;
  EXPECT_EQ(n, 200u);
  buffer.Close();
}

// Planner-level: the adaptive_buffering knob decides whether refined plans
// carry controllers; OFF must mean "exactly the static refiner".
class AdaptivePlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  static PlannerOptions Refined(bool adaptive, size_t batch = 1,
                                size_t degree = 1) {
    PlannerOptions options;
    options.refine = true;
    options.refinement.adaptive_buffering = adaptive;
    options.batch_size = batch;
    options.parallel_degree = degree;
    return options;
  }

  static Catalog* catalog_;
};

Catalog* AdaptivePlanTest::catalog_ = nullptr;

constexpr char kAggSql[] =
    "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag";

TEST_F(AdaptivePlanTest, KnobControlsControllerAttachment) {
  OperatorPtr off = MustPlan(kAggSql, Refined(false));
  std::vector<BufferRuntimeStats> stats;
  CollectBufferStats(*off, &stats);
  ASSERT_FALSE(stats.empty());
  for (const auto& s : stats) {
    EXPECT_FALSE(s.adaptive);
    EXPECT_EQ(s.state, "static");
  }
  OperatorPtr on = MustPlan(kAggSql, Refined(true));
  stats.clear();
  CollectBufferStats(*on, &stats);
  ASSERT_FALSE(stats.empty());
  for (const auto& s : stats) EXPECT_TRUE(s.adaptive);
}

TEST_F(AdaptivePlanTest, MatchesStaticResultsAcrossBatchWidths) {
  for (size_t width : {1u, 7u, 256u, 1024u}) {
    OperatorPtr st = MustPlan(kAggSql, Refined(false, width));
    auto expected = Canonical(RunPlan(st.get()));
    OperatorPtr ad = MustPlan(kAggSql, Refined(true, width));
    auto actual = Canonical(RunPlan(ad.get()));
    EXPECT_EQ(expected, actual) << "batch width " << width;
  }
}

TEST_F(AdaptivePlanTest, MatchesStaticResultsAcrossExchangeDegrees) {
  OperatorPtr serial = MustPlan(kAggSql, Refined(false));
  auto expected = Canonical(RunPlan(serial.get()));
  for (size_t degree : {1u, 2u, 8u}) {
    OperatorPtr plan = MustPlan(kAggSql, Refined(true, 1, degree));
    auto actual = Canonical(RunPlan(plan.get()));
    EXPECT_EQ(expected, actual) << "degree " << degree;
    // Every per-worker buffer clone calibrated independently on its own
    // thread (the controller is deliberately unsynchronized).
    std::vector<BufferRuntimeStats> stats;
    CollectBufferStats(*plan, &stats);
    for (const auto& s : stats) {
      EXPECT_TRUE(s.adaptive);
      EXPECT_NE(s.state, "calibrating") << s.label;
    }
  }
}

}  // namespace
}  // namespace bufferdb

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/hash_join.h"
#include "exec/materialize.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Canonical;
using testutil::Col;
using testutil::MakeKvTable;
using testutil::RunPlan;

// Builds the join key expression for a (k, v) table schema.
ExprPtr Key(const Table& table) { return Col(table.schema(), "k"); }

OperatorPtr Scan(Table* table) {
  return std::make_unique<SeqScanOperator>(table, nullptr);
}

// Reference result via the naive nested-loop join.
std::vector<std::string> Oracle(Table* left, Table* right) {
  Schema combined = Schema::Concat(left->schema(), right->schema());
  // Join predicate over the combined row: columns 0 (left k) and 2 (right k).
  ExprPtr pred = Bin(
      BinaryOp::kEq,
      MakeColumnRefUnchecked(0, DataType::kInt64, "lk"),
      MakeColumnRefUnchecked(2, DataType::kInt64, "rk"));
  NestLoopJoinOperator nlj(
      Scan(left), std::make_unique<MaterializeOperator>(Scan(right)),
      std::move(pred));
  return Canonical(RunPlan(&nlj));
}

std::vector<std::string> ViaHash(Table* left, Table* right) {
  HashJoinOperator join(Scan(left), Scan(right), Key(*left), Key(*right));
  return Canonical(RunPlan(&join));
}

std::vector<std::string> ViaMerge(Table* left, Table* right) {
  auto sort = [](Table* t) {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{Col(t->schema(), "k"), false});
    return std::make_unique<SortOperator>(
        std::make_unique<SeqScanOperator>(t, nullptr), std::move(keys));
  };
  MergeJoinOperator join(sort(left), sort(right), Key(*left), Key(*right));
  return Canonical(RunPlan(&join));
}

std::vector<std::string> ViaIndexNlj(Table* left, Catalog* catalog,
                                     const std::string& index_name) {
  const IndexInfo* index = catalog->GetIndex(index_name);
  auto inner = std::make_unique<IndexScanOperator>(index, std::nullopt,
                                                   std::nullopt, nullptr);
  IndexNestLoopJoinOperator join(Scan(left), std::move(inner), Key(*left));
  return Canonical(RunPlan(&join));
}

TEST(JoinTest, SimpleEquiJoinAllStrategiesAgree) {
  auto left = MakeKvTable("l", {{1, 10}, {2, 20}, {3, 30}});
  auto right = MakeKvTable("r", {{2, 200}, {3, 300}, {4, 400}});
  auto expected = Oracle(left.get(), right.get());
  ASSERT_EQ(expected.size(), 2u);
  EXPECT_EQ(ViaHash(left.get(), right.get()), expected);
  EXPECT_EQ(ViaMerge(left.get(), right.get()), expected);
}

TEST(JoinTest, DuplicateKeysProduceCrossProduct) {
  auto left = MakeKvTable("l", {{1, 1}, {1, 2}, {2, 3}});
  auto right = MakeKvTable("r", {{1, 9}, {1, 8}, {1, 7}, {2, 6}});
  auto expected = Oracle(left.get(), right.get());
  ASSERT_EQ(expected.size(), 7u);  // 2*3 + 1*1.
  EXPECT_EQ(ViaHash(left.get(), right.get()), expected);
  EXPECT_EQ(ViaMerge(left.get(), right.get()), expected);
}

TEST(JoinTest, NoMatches) {
  auto left = MakeKvTable("l", {{1, 1}, {2, 2}});
  auto right = MakeKvTable("r", {{3, 3}, {4, 4}});
  EXPECT_TRUE(ViaHash(left.get(), right.get()).empty());
  EXPECT_TRUE(ViaMerge(left.get(), right.get()).empty());
}

TEST(JoinTest, EmptyInputs) {
  auto empty = MakeKvTable("l", {});
  auto right = MakeKvTable("r", {{1, 1}});
  EXPECT_TRUE(ViaHash(empty.get(), right.get()).empty());
  EXPECT_TRUE(ViaHash(right.get(), empty.get()).empty());
  EXPECT_TRUE(ViaMerge(empty.get(), right.get()).empty());
  EXPECT_TRUE(ViaMerge(right.get(), empty.get()).empty());
}

TEST(JoinTest, NullKeysNeverMatch) {
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto left = std::make_unique<Table>("l", schema);
  left->AppendRow({Value::Null(DataType::kInt64), Value::Double(1)});
  left->AppendRow({Value::Int64(1), Value::Double(2)});
  auto right = std::make_unique<Table>("r", schema);
  right->AppendRow({Value::Null(DataType::kInt64), Value::Double(3)});
  right->AppendRow({Value::Int64(1), Value::Double(4)});

  EXPECT_EQ(ViaHash(left.get(), right.get()).size(), 1u);
  EXPECT_EQ(ViaMerge(left.get(), right.get()).size(), 1u);
}

TEST(JoinTest, IndexNestLoopMatchesOracle) {
  Catalog catalog;
  auto left = MakeKvTable("l", {{1, 1}, {2, 2}, {5, 5}, {2, 7}});
  ASSERT_TRUE(
      catalog.AddTable(MakeKvTable("r", {{1, 10}, {2, 20}, {3, 30}})).ok());
  ASSERT_TRUE(catalog.CreateIndex("r_k", "r", "k").ok());
  Table* right = catalog.GetTable("r");
  auto expected = Oracle(left.get(), right);
  EXPECT_EQ(ViaIndexNlj(left.get(), &catalog, "r_k"), expected);
}

TEST(JoinTest, IndexNestLoopWithDuplicateInnerKeys) {
  Catalog catalog;
  auto left = MakeKvTable("l", {{7, 1}});
  ASSERT_TRUE(catalog.AddTable(
                  MakeKvTable("r", {{7, 1}, {7, 2}, {7, 3}, {8, 4}}))
                  .ok());
  ASSERT_TRUE(catalog.CreateIndex("r_k", "r", "k").ok());
  EXPECT_EQ(ViaIndexNlj(left.get(), &catalog, "r_k").size(), 3u);
}

TEST(JoinTest, HashJoinResidualPredicate) {
  auto left = MakeKvTable("l", {{1, 5}, {1, 15}});
  auto right = MakeKvTable("r", {{1, 10}});
  // Residual: left.v > right.v (columns 1 and 3 of the combined schema).
  ExprPtr residual = Bin(
      BinaryOp::kGt, MakeColumnRefUnchecked(1, DataType::kDouble, "lv"),
      MakeColumnRefUnchecked(3, DataType::kDouble, "rv"));
  HashJoinOperator join(Scan(left.get()), Scan(right.get()), Key(*left),
                        Key(*right), std::move(residual));
  auto rows = RunPlan(&join);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Double(15));
}

TEST(JoinTest, HashJoinRehashGrowth) {
  // More build rows than the initial table size forces rehashing.
  std::vector<std::pair<int64_t, double>> many;
  for (int64_t i = 0; i < 5000; ++i) many.push_back({i, i * 1.0});
  auto left = MakeKvTable("l", many);
  auto right = MakeKvTable("r", many);
  HashJoinOperator join(Scan(left.get()), Scan(right.get()), Key(*left),
                        Key(*right));
  EXPECT_EQ(RunPlan(&join).size(), 5000u);
  EXPECT_EQ(join.build_size(), 0u);  // Cleared on Close.
}

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

// Property: on random multiset-keyed inputs, hash join and merge join agree
// exactly with the naive nested-loop oracle.
TEST_P(JoinEquivalenceTest, RandomInputsAllStrategiesAgree) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  std::vector<std::pair<int64_t, double>> lrows, rrows;
  for (int i = 0; i < n; ++i) {
    lrows.push_back({rng.Uniform(0, n / 4 + 1), i * 1.0});
  }
  for (int i = 0; i < n / 2 + 1; ++i) {
    rrows.push_back({rng.Uniform(0, n / 4 + 1), i * 10.0});
  }
  auto left = MakeKvTable("l", lrows);
  auto right = MakeKvTable("r", rrows);
  auto expected = Oracle(left.get(), right.get());
  EXPECT_EQ(ViaHash(left.get(), right.get()), expected);
  EXPECT_EQ(ViaMerge(left.get(), right.get()), expected);

  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeKvTable("r", rrows)).ok());
  ASSERT_TRUE(catalog.CreateIndex("r_k", "r", "k").ok());
  EXPECT_EQ(ViaIndexNlj(left.get(), &catalog, "r_k"), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JoinEquivalenceTest,
                         ::testing::Values(1, 5, 20, 100, 400));

}  // namespace
}  // namespace bufferdb

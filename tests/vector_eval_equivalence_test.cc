// Differential fuzzing of the vectorized expression engine against the
// tuple-at-a-time interpreter (DESIGN.md section 10.4).
//
// Randomized expression trees over NULL-heavy, zero-heavy data are compiled
// with CompiledExpr::Compile and executed column-at-a-time; every lane must
// be bit-identical to Expression::Evaluate on the same row, including the
// null flag, the exact double bit pattern, division-by-zero -> NULL, and
// the Kleene AND/OR truth tables. Boolean trees additionally check
// RunFilter against EvaluatePredicate, and constant-folded trees against
// their unfolded originals. Exercised at batch widths 1/7/256/1024 so both
// the scalar kernels and (when compiled with BUFFERDB_AVX2) the AVX2
// specializations with their scalar tails are covered.
//
// Integer leaf magnitudes are capped (|x| <= 3, literals |x| <= 3, depth
// <= 4) so no tree can overflow int64 arithmetic: the deepest product chain
// is bounded by 3^(2^4) ~= 43e6. That keeps the asan-ubsan CI job's signed
// overflow checker quiet without narrowing the semantics under test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "exec/row_batch_decoder.h"
#include "expr/evaluator.h"
#include "expr/expression.h"
#include "expr/vector.h"
#include "expr/vector_eval.h"
#include "storage/tuple.h"

namespace bufferdb {
namespace {

constexpr size_t kNumRows = 1024;
constexpr int kMaxDepth = 4;

class VectorEvalFuzzTest : public ::testing::Test {
 protected:
  VectorEvalFuzzTest()
      : schema_({{"i0", DataType::kInt64},
                 {"i1", DataType::kInt64},
                 {"d0", DataType::kDouble},
                 {"d1", DataType::kDouble},
                 {"b0", DataType::kBool},
                 {"t0", DataType::kDate},
                 {"s0", DataType::kString}}) {}

  // NULL-heavy (~30%), zero-heavy data: zeros make division-by-zero and
  // Kleene short-circuits common instead of vanishingly rare.
  void BuildRows(uint64_t seed) {
    Rng rng(seed);
    rows_.clear();
    rows_.reserve(kNumRows);
    for (size_t r = 0; r < kNumRows; ++r) {
      TupleBuilder b(&schema_);
      if (rng.Next() % 10 < 3) b.SetNull(0); else b.SetInt64(0, rng.Uniform(-3, 3));
      if (rng.Next() % 10 < 3) b.SetNull(1); else b.SetInt64(1, rng.Uniform(-3, 3));
      if (rng.Next() % 10 < 3) b.SetNull(2); else b.SetDouble(2, static_cast<double>(rng.Uniform(-6, 6)) * 0.5);
      if (rng.Next() % 10 < 3) b.SetNull(3); else b.SetDouble(3, static_cast<double>(rng.Uniform(-4, 4)));
      if (rng.Next() % 10 < 3) b.SetNull(4); else b.SetBool(4, rng.Next() % 2 == 0);
      if (rng.Next() % 10 < 3) b.SetNull(5); else b.SetDate(5, rng.Uniform(0, 100));
      if (rng.Next() % 10 < 3) b.SetNull(6); else b.SetString(6, rng.Next() % 2 == 0 ? "abc" : "xy");
      rows_.push_back(b.Finish(&arena_));
    }
  }

  // --- Random tree generation -------------------------------------------

  ExprPtr RandomLeaf(Rng* rng, bool allow_string) {
    switch (rng->Next() % (allow_string ? 8 : 7)) {
      case 0: return MakeColumnRefUnchecked(0, DataType::kInt64, "i0");
      case 1: return MakeColumnRefUnchecked(1, DataType::kInt64, "i1");
      case 2: return MakeColumnRefUnchecked(2, DataType::kDouble, "d0");
      case 3: return MakeColumnRefUnchecked(3, DataType::kDouble, "d1");
      case 4: return MakeColumnRefUnchecked(4, DataType::kBool, "b0");
      case 5: return MakeColumnRefUnchecked(5, DataType::kDate, "t0");
      case 6: {  // Literal, occasionally NULL, occasionally zero.
        switch (rng->Next() % 5) {
          case 0: return MakeLiteral(Value::Int64(rng->Uniform(-3, 3)));
          case 1: return MakeLiteral(Value::Int64(0));
          case 2: return MakeLiteral(Value::Double(static_cast<double>(rng->Uniform(-4, 4)) * 0.25));
          case 3: return MakeLiteral(Value::Bool(rng->Next() % 2 == 0));
          default: return MakeLiteral(Value::Null(DataType::kInt64));
        }
      }
      default: return MakeColumnRefUnchecked(6, DataType::kString, "s0");
    }
  }

  // Builds a random tree; returns nullptr when the type checker rejects the
  // drawn combination (caller redraws). String leaves are allowed with low
  // probability so some trees exercise the Compile -> nullptr fallback.
  ExprPtr RandomTree(Rng* rng, int depth) {
    const bool allow_string = rng->Next() % 8 == 0;
    if (depth >= kMaxDepth || rng->Next() % 4 == 0) {
      return RandomLeaf(rng, allow_string);
    }
    if (rng->Next() % 4 == 0) {  // Unary.
      ExprPtr operand = RandomTree(rng, depth + 1);
      if (operand == nullptr) return nullptr;
      auto op = static_cast<UnaryOp>(rng->Next() % 4);
      auto r = MakeUnary(op, std::move(operand));
      return r.ok() ? std::move(*r) : nullptr;
    }
    ExprPtr left = RandomTree(rng, depth + 1);
    ExprPtr right = RandomTree(rng, depth + 1);
    if (left == nullptr || right == nullptr) return nullptr;
    auto op = static_cast<BinaryOp>(rng->Next() % 13);  // Includes kLike.
    auto r = MakeBinary(op, std::move(left), std::move(right));
    return r.ok() ? std::move(*r) : nullptr;
  }

  // --- Differential check ------------------------------------------------

  static void ExpectLaneEqualsInterpreter(const Value& expect,
                                          const ColumnVector& col,
                                          size_t lane, const std::string& ctx) {
    const bool vnull = col.nulls[lane] != 0;
    ASSERT_EQ(expect.is_null(), vnull) << ctx;
    if (vnull) return;
    if (col.is_double()) {
      ASSERT_EQ(expect.type(), DataType::kDouble) << ctx;
      // Bit-pattern comparison: NaN == NaN, -0.0 != 0.0 would be caught.
      int64_t ebits, vbits;
      double ed = expect.double_value(), vd = col.f64[lane];
      std::memcpy(&ebits, &ed, 8);
      std::memcpy(&vbits, &vd, 8);
      ASSERT_EQ(ebits, vbits) << ctx << " expect=" << ed << " got=" << vd;
    } else if (expect.type() == DataType::kBool) {
      ASSERT_EQ(expect.bool_value() ? 1 : 0, col.i64[lane]) << ctx;
    } else {
      ASSERT_EQ(expect.int64_value(), col.i64[lane]) << ctx;
    }
  }

  // Runs `program` over rows_ in chunks of `width` and compares every lane
  // against the interpreter. Also checks RunFilter for boolean programs.
  void CheckProgram(const Expression& expr, CompiledExpr* program,
                    size_t width, const std::string& ctx) {
    VectorBatch batch;
    SelectionVector sel;
    for (size_t base = 0; base < rows_.size(); base += width) {
      const size_t n = std::min(width, rows_.size() - base);
      RowBatchDecoder::Decode(rows_.data() + base, n, schema_,
                              program->input_columns(), &batch);
      const ColumnVector& result = program->Run(batch);
      for (size_t lane = 0; lane < n; ++lane) {
        TupleView view(rows_[base + lane], &schema_);
        Value expect = expr.Evaluate(view);
        ExpectLaneEqualsInterpreter(
            expect, result, lane,
            ctx + " row=" + std::to_string(base + lane) + " width=" +
                std::to_string(width));
      }
      if (expr.result_type() == DataType::kBool) {
        program->RunFilter(batch, &sel);
        size_t k = 0;
        for (size_t lane = 0; lane < n; ++lane) {
          TupleView view(rows_[base + lane], &schema_);
          if (EvaluatePredicate(expr, view)) {
            ASSERT_LT(k, sel.count) << ctx;
            ASSERT_EQ(sel.idx[k], lane) << ctx;
            ++k;
          }
        }
        ASSERT_EQ(k, sel.count) << ctx;
      }
    }
  }

  // Compiles and checks at every width; returns false when the tree did not
  // compile (expected for string/LIKE subtrees).
  bool CompileAndCheck(const Expression& expr, const std::string& ctx) {
    auto program = CompiledExpr::Compile(expr, schema_);
    if (program == nullptr) return false;
    for (size_t width : {size_t{1}, size_t{7}, size_t{256}, size_t{1024}}) {
      CheckProgram(expr, program.get(), width, ctx);
    }
    return true;
  }

  Schema schema_;
  Arena arena_;
  std::vector<const uint8_t*> rows_;
};

TEST_F(VectorEvalFuzzTest, RandomTreesMatchInterpreter) {
  BuildRows(/*seed=*/42);
  Rng rng(7);
  int compiled = 0, skipped = 0, drawn = 0;
  while (drawn < 400) {
    ExprPtr tree = RandomTree(&rng, 0);
    if (tree == nullptr) continue;  // Type checker rejected; redraw.
    ++drawn;
    if (CompileAndCheck(*tree, tree->ToString())) {
      ++compiled;
    } else {
      ++skipped;  // String/LIKE subtree: interpreter fallback path.
    }
  }
  // The engine must compile the overwhelming majority of drawn trees --
  // a regression that silently rejects e.g. all kDate comparisons would
  // show up here long before it showed up in a benchmark.
  EXPECT_GT(compiled, 100) << "compiled=" << compiled << " skipped=" << skipped;
  EXPECT_GT(skipped, 0) << "no tree exercised the non-compilable fallback";
}

TEST_F(VectorEvalFuzzTest, FoldedTreesMatchUnfolded) {
  BuildRows(/*seed=*/43);
  Rng rng(11);
  int folded_checked = 0;
  for (int t = 0; t < 120; ++t) {
    ExprPtr tree = RandomTree(&rng, 0);
    if (tree == nullptr) continue;
    ExprPtr original = tree->Clone();
    ExprPtr folded = FoldConstants(std::move(tree));
    // The folded tree must agree with the *unfolded* interpreter on every
    // row (vectorized and interpreted alike).
    if (CompileAndCheck(*original, "unfolded:" + original->ToString())) {
      ++folded_checked;
    }
    auto program = CompiledExpr::Compile(*folded, schema_);
    if (program == nullptr) continue;
    VectorBatch batch;
    for (size_t base = 0; base < rows_.size(); base += 256) {
      const size_t n = std::min<size_t>(256, rows_.size() - base);
      RowBatchDecoder::Decode(rows_.data() + base, n, schema_,
                              program->input_columns(), &batch);
      const ColumnVector& result = program->Run(batch);
      for (size_t lane = 0; lane < n; ++lane) {
        TupleView view(rows_[base + lane], &schema_);
        ExpectLaneEqualsInterpreter(original->Evaluate(view), result, lane,
                                    "folded:" + folded->ToString());
      }
    }
  }
  EXPECT_GT(folded_checked, 20);
}

TEST_F(VectorEvalFuzzTest, DivisionByZeroAndInt64MinEdge) {
  // INT64_MIN / -1 is the one deliberate divergence from UB: both engines
  // define it as INT64_MIN. Build targeted rows instead of waiting for the
  // fuzzer to draw them.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Arena arena;
  std::vector<const uint8_t*> rows;
  const int64_t cases[][2] = {
      {5, 0}, {0, 0}, {-7, 0}, {INT64_MIN, -1}, {INT64_MIN, 1}, {42, -1}};
  for (const auto& c : cases) {
    TupleBuilder b(&schema);
    b.SetInt64(0, c[0]);
    b.SetInt64(1, c[1]);
    rows.push_back(b.Finish(&arena));
  }
  auto div = MakeBinary(BinaryOp::kDiv,
                        MakeColumnRefUnchecked(0, DataType::kInt64, "a"),
                        MakeColumnRefUnchecked(1, DataType::kInt64, "b"));
  ASSERT_TRUE(div.ok());
  auto program = CompiledExpr::Compile(**div, schema);
  ASSERT_NE(program, nullptr);
  VectorBatch batch;
  RowBatchDecoder::Decode(rows.data(), rows.size(), schema,
                          program->input_columns(), &batch);
  const ColumnVector& result = program->Run(batch);
  for (size_t i = 0; i < rows.size(); ++i) {
    Value expect = (*div)->Evaluate(TupleView(rows[i], &schema));
    ExpectLaneEqualsInterpreter(expect, result, i,
                                "div case " + std::to_string(i));
  }
  EXPECT_NE(result.nulls[0], 0);                    // 5 / 0 -> NULL
  EXPECT_EQ(result.i64[3], INT64_MIN);              // INT64_MIN / -1
  EXPECT_EQ(result.nulls[3], 0);
}

TEST_F(VectorEvalFuzzTest, KleeneTruthTables) {
  // All nine (T, F, NULL)^2 combinations for AND and OR.
  Schema schema({{"x", DataType::kBool}, {"y", DataType::kBool}});
  Arena arena;
  std::vector<const uint8_t*> rows;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      TupleBuilder b(&schema);
      if (x == 2) b.SetNull(0); else b.SetBool(0, x == 1);
      if (y == 2) b.SetNull(1); else b.SetBool(1, y == 1);
      rows.push_back(b.Finish(&arena));
    }
  }
  for (BinaryOp op : {BinaryOp::kAnd, BinaryOp::kOr}) {
    auto e = MakeBinary(op, MakeColumnRefUnchecked(0, DataType::kBool, "x"),
                        MakeColumnRefUnchecked(1, DataType::kBool, "y"));
    ASSERT_TRUE(e.ok());
    auto program = CompiledExpr::Compile(**e, schema);
    ASSERT_NE(program, nullptr);
    VectorBatch batch;
    RowBatchDecoder::Decode(rows.data(), rows.size(), schema,
                            program->input_columns(), &batch);
    const ColumnVector& result = program->Run(batch);
    for (size_t i = 0; i < rows.size(); ++i) {
      Value expect = (*e)->Evaluate(TupleView(rows[i], &schema));
      ExpectLaneEqualsInterpreter(expect, result, i,
                                  std::string(BinaryOpName(op)) + " case " +
                                      std::to_string(i));
    }
  }
}

TEST_F(VectorEvalFuzzTest, ScalarAndAvxPathsAgree) {
  // With BUFFERDB_AVX2 off this degenerates to scalar-vs-scalar, which is
  // still a valid (if vacuous) assertion; the bench-smoke CI job compiles
  // with -mavx2 and runs the real comparison.
  BuildRows(/*seed=*/44);
  Rng rng(13);
  int checked = 0;
  while (checked < 40) {
    ExprPtr tree = RandomTree(&rng, 0);
    if (tree == nullptr) continue;
    auto avx = CompiledExpr::Compile(*tree, schema_);
    auto scalar = CompiledExpr::Compile(*tree, schema_);
    if (avx == nullptr) continue;
    scalar->set_use_avx2(false);
    VectorBatch ba, bs;
    RowBatchDecoder::Decode(rows_.data(), rows_.size(), schema_,
                            avx->input_columns(), &ba);
    RowBatchDecoder::Decode(rows_.data(), rows_.size(), schema_,
                            scalar->input_columns(), &bs);
    const ColumnVector& ra = avx->Run(ba);
    const ColumnVector& rs = scalar->Run(bs);
    for (size_t lane = 0; lane < rows_.size(); ++lane) {
      ASSERT_EQ(rs.nulls[lane], ra.nulls[lane]) << tree->ToString();
      if (rs.is_double()) {
        ASSERT_EQ(0, std::memcmp(&rs.f64[lane], &ra.f64[lane], 8))
            << tree->ToString();
      } else {
        ASSERT_EQ(rs.i64[lane], ra.i64[lane]) << tree->ToString();
      }
    }
    ++checked;
  }
}

}  // namespace
}  // namespace bufferdb

// Batch/tuple equivalence suite (ISSUE acceptance criteria): for every
// operator type, draining a plan through NextBatch must produce exactly the
// rows Next() produces — same values, same order (order-insensitive only for
// parallel Exchange plans, whose interleaving is nondeterministic by design).
// Parameterized over batch sizes 1, 7, 256 and 1024 so the suite covers the
// degenerate single-slot batch, a size that never divides the inputs evenly,
// the default, and a batch larger than most inputs. Runs under ASan/UBSan in
// CI, so it also pins down the pointer-validity part of the contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive_buffer.h"
#include "core/buffer_operator.h"
#include "exec/aggregation.h"
#include "exec/filter.h"
#include "exec/fused_pipeline.h"
#include "exec/hash_aggregation.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "plan/physical_planner.h"
#include "sql/binder.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Canonical;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;
using testutil::RunPlan;

// Deterministic (k, v) rows with repeated keys; 997 rows so no batch size
// under test divides the input evenly.
std::vector<std::pair<int64_t, double>> TestRows(size_t n = 997) {
  std::vector<std::pair<int64_t, double>> rows;
  uint64_t state = 12345;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    rows.emplace_back(static_cast<int64_t>(state % 37),
                      static_cast<double>(state % 1000) / 10.0);
  }
  return rows;
}

std::vector<std::vector<Value>> Decode(const std::vector<const uint8_t*>& rows,
                                       const Schema& schema) {
  std::vector<std::vector<Value>> out;
  out.reserve(rows.size());
  for (const uint8_t* row : rows) {
    TupleView view(row, &schema);
    std::vector<Value> values;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

// Drains `root` through NextBatch and boxes the rows. Decoding happens
// before Close so the suite relies only on the documented pointer validity
// (query arena / storage lifetime), which ASan would flag if violated.
std::vector<std::vector<Value>> RunPlanBatched(Operator* root, size_t batch) {
  ExecContext ctx;
  auto rows = ExecutePlanBatched(root, &ctx, batch);
  EXPECT_TRUE(rows.ok()) << rows.status();
  if (!rows.ok()) return {};
  return Decode(*rows, root->output_schema());
}

// CI's debug-contracts job re-runs this suite with BUFFERDB_ADAPTIVE_BUFFERING
// set: every BufferOperator in every checked plan then carries a runtime
// controller (DESIGN.md §14), so batch/tuple equivalence — and the contract
// checker's slice poisoning — also covers mid-stream capacity resizing and
// demotion. Unset (the default), the suite is bit-identical to the static
// engine.
bool AdaptiveFromEnv() {
  const char* env = std::getenv("BUFFERDB_ADAPTIVE_BUFFERING");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// CI also re-runs this suite with BUFFERDB_FUSE_PIPELINES set: every
// hand-built Scan -> Filter* -> [Project] chain is then collapsed into a
// FusedPipelineOperator (DESIGN.md §15) before contract-checking, and
// planner-built Exchange plans go through the refiner with the
// fuse_pipelines knob on — so batch/tuple equivalence also covers the fused
// kernels. Unset (the default), the suite is bit-identical to the unfused
// engine.
bool FuseFromEnv() {
  const char* env = std::getenv("BUFFERDB_FUSE_PIPELINES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

OperatorPtr MaybeFuse(OperatorPtr plan) {
  if (!FuseFromEnv()) return plan;
  return FusedPipelineOperator::TryFuse(std::move(plan),
                                        FusedPipelineOptions());
}

void MaybeEnableAdaptive(Operator* op) {
  if (!AdaptiveFromEnv()) return;
  if (auto* buffer = dynamic_cast<BufferOperator*>(op)) {
    buffer->EnableAdaptive(AdaptiveBufferOptions());
  }
  for (size_t i = 0; i < op->num_children(); ++i) {
    MaybeEnableAdaptive(op->child(i));
  }
}

void ExpectSameRows(const std::vector<std::vector<Value>>& expected,
                    const std::vector<std::vector<Value>>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].size(), actual[i].size()) << "row " << i;
    for (size_t c = 0; c < expected[i].size(); ++c) {
      EXPECT_TRUE(expected[i][c] == actual[i][c])
          << "row " << i << " col " << c << ": " << expected[i][c].ToString()
          << " vs " << actual[i][c].ToString();
    }
  }
}

class BatchEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t batch() const { return GetParam(); }

  // Builds the plan twice via `factory` and checks NextBatch output at the
  // parameterized width against the tuple-at-a-time output.
  template <typename Factory>
  void CheckEquivalent(Factory factory) {
    // Both plans go through the contract checker: in Debug builds every
    // operator pairing in this suite also asserts the Open/Next/Close state
    // machine and poisons stale batch slices; in Release the wrapper
    // compiles away. The batch plan is additionally fused when
    // BUFFERDB_FUSE_PIPELINES is set (fusion needs the raw operator tree,
    // so it runs before wrapping).
    OperatorPtr tuple_plan = testutil::ContractChecked(factory());
    OperatorPtr batch_plan = testutil::ContractChecked(MaybeFuse(factory()));
    MaybeEnableAdaptive(tuple_plan.get());
    MaybeEnableAdaptive(batch_plan.get());
    ExpectSameRows(RunPlan(tuple_plan.get()),
                   RunPlanBatched(batch_plan.get(), batch()));
  }
};

TEST_P(BatchEquivalenceTest, SeqScan) {
  auto table = MakeKvTable("t", TestRows());
  CheckEquivalent(
      [&] { return std::make_unique<SeqScanOperator>(table.get(), nullptr); });
}

TEST_P(BatchEquivalenceTest, SeqScanWithPredicate) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    return std::make_unique<SeqScanOperator>(
        table.get(),
        Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(40.0))));
  });
}

TEST_P(BatchEquivalenceTest, FilterAboveScan) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    return std::make_unique<FilterOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(9))));
  });
}

TEST_P(BatchEquivalenceTest, FilterRejectingEverything) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    return std::make_unique<FilterOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(-1))));
  });
}

TEST_P(BatchEquivalenceTest, ProjectAboveScan) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    std::vector<ProjectItem> items;
    items.push_back(ProjectItem{
        Bin(BinaryOp::kMul, Col(s, "v"), Lit(Value::Double(2.0))), "v2"});
    items.push_back(ProjectItem{Col(s, "k"), "k"});
    return std::make_unique<ProjectOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        std::move(items));
  });
}

TEST_P(BatchEquivalenceTest, BufferAboveScan) {
  auto table = MakeKvTable("t", TestRows());
  for (size_t buffer_size : {3u, 100u, 2000u}) {
    CheckEquivalent([&] {
      return std::make_unique<BufferOperator>(
          std::make_unique<SeqScanOperator>(table.get(), nullptr),
          buffer_size);
    });
  }
}

TEST_P(BatchEquivalenceTest, StackedBuffersWithFilter) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    OperatorPtr plan = std::make_unique<SeqScanOperator>(table.get(), nullptr);
    plan = std::make_unique<BufferOperator>(std::move(plan), 64);
    plan = std::make_unique<FilterOperator>(
        std::move(plan), Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(20))));
    plan = std::make_unique<BufferOperator>(std::move(plan), 128);
    return plan;
  });
}

TEST_P(BatchEquivalenceTest, SortDefaultNextBatch) {
  // Sort has no NextBatch override: covers the base-class fallback loop.
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{Col(s, "k"), false});
    keys.push_back(SortKey{Col(s, "v"), true});
    return std::make_unique<SortOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        std::move(keys));
  });
}

TEST_P(BatchEquivalenceTest, ScalarAggregation) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  CheckEquivalent([&] {
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
    specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
    specs.push_back(AggSpec{AggFunc::kMax, Col(s, "k"), "max_k"});
    return std::make_unique<AggregationOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        std::move(specs));
  });
}

TEST_P(BatchEquivalenceTest, HashJoinBatchedProbe) {
  auto probe_table = MakeKvTable("probe", TestRows());
  std::vector<std::pair<int64_t, double>> build_rows;
  for (int64_t k = 0; k < 37; k += 2) {  // Some probe keys unmatched.
    build_rows.emplace_back(k, 1000.0 + static_cast<double>(k));
  }
  auto build_table = MakeKvTable("build", build_rows);
  const Schema& ps = probe_table->schema();
  const Schema& bs = build_table->schema();
  auto make_join = [&](size_t probe_batch) {
    auto join = std::make_unique<HashJoinOperator>(
        std::make_unique<SeqScanOperator>(probe_table.get(), nullptr),
        std::make_unique<SeqScanOperator>(build_table.get(), nullptr),
        Col(ps, "k"), Col(bs, "k"));
    join->set_probe_batch_size(probe_batch);
    return join;
  };
  // The batched probe must be invisible at both drain interfaces.
  auto expected = RunPlan(make_join(1).get());
  auto batched_tuple_drain = RunPlan(make_join(batch()).get());
  ExpectSameRows(expected, batched_tuple_drain);
  auto batched_batch_drain = RunPlanBatched(make_join(batch()).get(), batch());
  ExpectSameRows(expected, batched_batch_drain);
}

TEST_P(BatchEquivalenceTest, HashAggregationBatchedLoad) {
  auto table = MakeKvTable("t", TestRows());
  const Schema& s = table->schema();
  auto make_agg = [&](size_t load_batch) {
    std::vector<GroupKeyExpr> groups;
    groups.push_back(GroupKeyExpr{Col(s, "k"), "k"});
    std::vector<AggSpec> specs;
    specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "sum_v"});
    specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
    auto agg = std::make_unique<HashAggregationOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr),
        std::move(groups), std::move(specs));
    agg->set_batch_size(load_batch);
    return agg;
  };
  auto expected = RunPlan(make_agg(1).get());
  ExpectSameRows(expected, RunPlan(make_agg(batch()).get()));
  ExpectSameRows(expected, RunPlanBatched(make_agg(batch()).get(), batch()));
}

TEST_P(BatchEquivalenceTest, MixingNextAndNextBatchIsAllowed) {
  // The contract allows interleaving Next() and NextBatch() on one stream.
  auto table = MakeKvTable("t", TestRows());
  auto make_buffer = [&] {
    auto buffer = std::make_unique<BufferOperator>(
        std::make_unique<SeqScanOperator>(table.get(), nullptr), 100);
    MaybeEnableAdaptive(buffer.get());
    return buffer;
  };
  auto expected = RunPlan(make_buffer().get());

  auto plan = make_buffer();
  ExecContext ctx;
  ASSERT_TRUE(plan->Open(&ctx).ok());
  std::vector<const uint8_t*> rows;
  std::vector<const uint8_t*> slice(batch());
  bool done = false;
  while (!done) {
    // One tuple, then one batch, until exhausted.
    const uint8_t* row = plan->Next();
    if (row == nullptr) break;
    rows.push_back(row);
    size_t n = plan->NextBatch(slice.data(), batch());
    if (n == 0) done = true;
    rows.insert(rows.end(), slice.begin(), slice.begin() + n);
  }
  auto actual = Decode(rows, plan->output_schema());
  plan->Close();
  ExpectSameRows(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchEquivalenceTest,
                         ::testing::Values(1, 7, 256, 1024));

// Exchange plans: the planner's batch_size knob at parallel degrees 1/2/8
// must leave the result set unchanged (order-insensitive — worker
// interleaving is nondeterministic).
class ExchangeBatchEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  static Catalog* catalog_;
};

Catalog* ExchangeBatchEquivalenceTest::catalog_ = nullptr;

TEST_P(ExchangeBatchEquivalenceTest, ProjectionAcrossDegrees) {
  const char kSql[] =
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'";
  OperatorPtr serial = MustPlan(kSql, PlannerOptions{});
  auto expected = Canonical(RunPlan(serial.get()));
  for (size_t degree : {1u, 2u, 8u}) {
    PlannerOptions options;
    options.parallel_degree = degree;
    options.batch_size = GetParam();
    if (AdaptiveFromEnv()) {
      // Adaptive CI pass: every per-worker buffer calibrates on its own
      // thread; the result must still match the unrefined serial plan.
      options.refine = true;
      options.refinement.adaptive_buffering = true;
    }
    if (FuseFromEnv()) {
      // Fused CI pass: worker fragments' scan chains collapse into fused
      // kernels; the result must still match the unrefined serial plan.
      options.refine = true;
      options.refinement.fuse_pipelines = true;
    }
    OperatorPtr plan = MustPlan(kSql, options);
    auto actual = Canonical(RunPlanBatched(plan.get(), GetParam()));
    EXPECT_EQ(expected, actual) << "degree " << degree;
  }
}

TEST_P(ExchangeBatchEquivalenceTest, JoinAggregateAcrossDegrees) {
  // Double aggregates are compared with a relative tolerance: parallel
  // summation order differs from the serial plan in the last ulp.
  const char kSql[] =
      "SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'";
  OperatorPtr serial = MustPlan(kSql, PlannerOptions{});
  auto expected = RunPlan(serial.get());
  ASSERT_EQ(expected.size(), 1u);
  for (size_t degree : {1u, 2u, 8u}) {
    PlannerOptions options;
    options.parallel_degree = degree;
    options.batch_size = GetParam();
    options.join_strategy = JoinStrategy::kHashJoin;
    if (AdaptiveFromEnv()) {
      options.refine = true;
      options.refinement.adaptive_buffering = true;
    }
    if (FuseFromEnv()) {
      options.refine = true;
      options.refinement.fuse_pipelines = true;
    }
    OperatorPtr plan = MustPlan(kSql, options);
    auto actual = RunPlanBatched(plan.get(), GetParam());
    ASSERT_EQ(actual.size(), 1u) << "degree " << degree;
    ASSERT_EQ(expected[0].size(), actual[0].size());
    for (size_t c = 0; c < expected[0].size(); ++c) {
      const Value& a = expected[0][c];
      const Value& b = actual[0][c];
      ASSERT_EQ(a.is_null(), b.is_null());
      if (a.is_null()) continue;
      if (a.type() == DataType::kDouble) {
        double tolerance = 1e-9 * (1.0 + std::abs(a.double_value()));
        EXPECT_NEAR(a.double_value(), b.double_value(), tolerance)
            << "degree " << degree << " col " << c;
      } else {
        EXPECT_TRUE(a == b) << "degree " << degree << " col " << c << ": "
                            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ExchangeBatchEquivalenceTest,
                         ::testing::Values(1, 7, 256, 1024));

}  // namespace
}  // namespace bufferdb

// Tests for the extensions beyond the paper's core: batched index-probe
// join (the authors' companion work), calibration persistence, and .tbl
// import/export.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/buffered_index_join.h"
#include "exec/nested_loop_join.h"
#include "exec/seq_scan.h"
#include "profile/calibration_io.h"
#include "sim/sim_cpu.h"
#include "test_util.h"
#include "tpch/tbl_io.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Canonical;
using testutil::Col;
using testutil::MakeKvTable;
using testutil::RunPlan;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class BufferedIndexJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::pair<int64_t, double>> inner_rows;
    for (int64_t i = 0; i < 300; ++i) inner_rows.push_back({i % 120, i * 1.0});
    ASSERT_TRUE(catalog_.AddTable(MakeKvTable("inner", inner_rows)).ok());
    ASSERT_TRUE(catalog_.CreateIndex("inner_k", "inner", "k").ok());
    index_ = catalog_.GetIndex("inner_k");

    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
      outer_rows_.push_back({rng.Uniform(0, 150), i * 0.5});
    }
    outer_ = MakeKvTable("outer", outer_rows_);
  }

  std::vector<std::string> Expected() {
    auto inner_scan = std::make_unique<IndexScanOperator>(
        index_, std::nullopt, std::nullopt, nullptr);
    IndexNestLoopJoinOperator join(
        std::make_unique<SeqScanOperator>(outer_.get(), nullptr),
        std::move(inner_scan), Col(outer_->schema(), "k"));
    return Canonical(RunPlan(&join));
  }

  Catalog catalog_;
  const IndexInfo* index_ = nullptr;
  std::vector<std::pair<int64_t, double>> outer_rows_;
  std::unique_ptr<Table> outer_;
};

TEST_F(BufferedIndexJoinTest, MatchesIndexNestLoopAsMultiset) {
  BufferedIndexJoinOperator join(
      std::make_unique<SeqScanOperator>(outer_.get(), nullptr), index_,
      Col(outer_->schema(), "k"), /*batch_size=*/64);
  EXPECT_EQ(Canonical(RunPlan(&join)), Expected());
  EXPECT_EQ(join.batches(), 8u);  // ceil(500 / 64); stats survive Close.
}

TEST_F(BufferedIndexJoinTest, BatchSizeSweep) {
  auto expected = Expected();
  for (size_t batch : {1u, 2u, 7u, 100u, 500u, 5000u}) {
    BufferedIndexJoinOperator join(
        std::make_unique<SeqScanOperator>(outer_.get(), nullptr), index_,
        Col(outer_->schema(), "k"), batch);
    EXPECT_EQ(Canonical(RunPlan(&join)), expected) << "batch " << batch;
  }
}

TEST_F(BufferedIndexJoinTest, WithinBatchOutputIsKeySorted) {
  BufferedIndexJoinOperator join(
      std::make_unique<SeqScanOperator>(outer_.get(), nullptr), index_,
      Col(outer_->schema(), "k"), /*batch_size=*/10000);  // One batch.
  auto rows = RunPlan(&join);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0].int64_value(), rows[i][0].int64_value());
  }
}

TEST_F(BufferedIndexJoinTest, NullOuterKeysSkipped) {
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  Table outer("o", schema);
  outer.AppendRow({Value::Null(DataType::kInt64), Value::Double(0)});
  outer.AppendRow({Value::Int64(1), Value::Double(1)});
  BufferedIndexJoinOperator join(
      std::make_unique<SeqScanOperator>(&outer, nullptr), index_,
      Col(schema, "k"), 10);
  auto rows = RunPlan(&join);
  for (const auto& row : rows) EXPECT_EQ(row[0], Value::Int64(1));
}

TEST_F(BufferedIndexJoinTest, ReducesIndexCodeInterleavingUnderSim) {
  auto run = [this](bool batched) {
    sim::SimCpu cpu;
    ExecContext ctx;
    ctx.cpu = &cpu;
    if (batched) {
      BufferedIndexJoinOperator join(
          std::make_unique<SeqScanOperator>(outer_.get(), nullptr), index_,
          Col(outer_->schema(), "k"), 1000);
      auto rows = ExecutePlan(&join, &ctx);
      EXPECT_TRUE(rows.ok());
    } else {
      auto inner_scan = std::make_unique<IndexScanOperator>(
          index_, std::nullopt, std::nullopt, nullptr);
      IndexNestLoopJoinOperator join(
          std::make_unique<SeqScanOperator>(outer_.get(), nullptr),
          std::move(inner_scan), Col(outer_->schema(), "k"));
      auto rows = ExecutePlan(&join, &ctx);
      EXPECT_TRUE(rows.ok());
    }
    return cpu.counters();
  };
  sim::SimCounters plain = run(false);
  sim::SimCounters batched = run(true);
  EXPECT_LT(batched.l1i_misses, plain.l1i_misses);
}

TEST(CalibrationIoTest, SaveLoadRoundTrip) {
  profile::SystemCalibration calibration;
  calibration.cardinality_threshold = 128;
  FuncSet scan;
  scan.AddAll(sim::ModuleBaseFuncs(sim::ModuleId::kSeqScanFiltered));
  calibration.footprints.SetFuncs(sim::ModuleId::kSeqScanFiltered, scan);
  FuncSet buffer;
  buffer.AddAll(sim::ModuleBaseFuncs(sim::ModuleId::kBuffer));
  calibration.footprints.SetFuncs(sim::ModuleId::kBuffer, buffer);

  std::string path = TempPath("calibration_roundtrip.txt");
  ASSERT_TRUE(profile::SaveCalibration(calibration, path).ok());
  auto loaded = profile::LoadCalibration(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded->cardinality_threshold, 128);
  EXPECT_EQ(loaded->footprints.footprint_bytes(sim::ModuleId::kSeqScanFiltered),
            13000u);
  EXPECT_EQ(loaded->footprints.footprint_bytes(sim::ModuleId::kBuffer), 500u);
  EXPECT_FALSE(loaded->footprints.has(sim::ModuleId::kSort));
  std::remove(path.c_str());
}

TEST(CalibrationIoTest, LoadRejectsCorruptFiles) {
  std::string path = TempPath("calibration_bad.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a calibration\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(profile::LoadCalibration(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("bufferdb-calibration v1\nmodule NoSuchModule f\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(profile::LoadCalibration(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("bufferdb-calibration v1\nmodule Scan no_such_func\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(profile::LoadCalibration(path).ok());
  EXPECT_FALSE(profile::LoadCalibration(TempPath("missing.txt")).ok());
  std::remove(path.c_str());
}

TEST(TblIoTest, RoundTripAllTypes) {
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"day", DataType::kDate},
                 {"b", DataType::kBool}});
  Table table("t", schema);
  table.AppendRow({Value::Int64(42), Value::Double(1.25),
                   Value::String("hello world"), Value::Date(10592),
                   Value::Bool(true)});
  table.AppendRow({Value::Null(DataType::kInt64), Value::Double(-3.5),
                   Value::String(""), Value::Null(DataType::kDate),
                   Value::Bool(false)});

  std::string path = TempPath("roundtrip.tbl");
  ASSERT_TRUE(tpch::WriteTbl(table, path).ok());
  auto loaded = tpch::ReadTbl("t2", schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->num_rows(), 2u);
  TupleView row0 = (*loaded)->view(0);
  EXPECT_EQ(row0.GetInt64(0), 42);
  EXPECT_DOUBLE_EQ(row0.GetDouble(1), 1.25);
  EXPECT_EQ(row0.GetString(2), "hello world");
  EXPECT_EQ(row0.GetDate(3), 10592);
  EXPECT_TRUE(row0.GetBool(4));
  TupleView row1 = (*loaded)->view(1);
  EXPECT_TRUE(row1.IsNull(0));
  EXPECT_TRUE(row1.IsNull(3));
  // Empty string round-trips as NULL in the .tbl format (documented).
  std::remove(path.c_str());
}

TEST(TblIoTest, TpchLineitemRoundTrip) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  config.build_indexes = false;
  ASSERT_TRUE(tpch::LoadTpch(config, &catalog).ok());
  Table* lineitem = catalog.GetTable("lineitem");

  std::string path = TempPath("lineitem.tbl");
  ASSERT_TRUE(tpch::WriteTbl(*lineitem, path).ok());
  auto loaded = tpch::ReadTbl("lineitem2", lineitem->schema(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->num_rows(), lineitem->num_rows());
  // Spot-check fields incl. doubles (rounded to 2 decimals by the format).
  for (size_t i = 0; i < lineitem->num_rows(); i += 131) {
    TupleView a = lineitem->view(i);
    TupleView b = (*loaded)->view(i);
    EXPECT_EQ(a.GetInt64(0), b.GetInt64(0));
    EXPECT_EQ(a.GetDate(10), b.GetDate(10));
    EXPECT_EQ(a.GetString(14), b.GetString(14));
    EXPECT_NEAR(a.GetDouble(5), b.GetDouble(5), 0.005);
  }
  std::remove(path.c_str());
}

TEST(TblIoTest, ReadRejectsMalformedLines) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  std::string path = TempPath("bad.tbl");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1|\n", f);  // Too few fields.
    std::fclose(f);
  }
  EXPECT_FALSE(tpch::ReadTbl("t", schema, path).ok());
  EXPECT_FALSE(tpch::ReadTbl("t", schema, TempPath("nope.tbl")).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bufferdb

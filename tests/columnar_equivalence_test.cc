// Columnar-scan equivalence suite (DESIGN.md §12): the planner's
// columnar_scan knob must be invisible in results. Covers
//   1. the batch-equivalence plan corpus (Exchange degrees 1/2/8, widths
//      1/7/256/1024) with columnar_scan on vs off,
//   2. zone-map pruning correctness on block-boundary-straddling predicates
//      and all-NULL blocks (pruning must change counters, never results),
//   3. dictionary round-trip and differential fuzz of the dictionary-code
//      string predicate compiler (Eq, LIKE-prefix) against the per-tuple
//      interpreter.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/column_scan.h"
#include "exec/seq_scan.h"
#include "plan/physical_planner.h"
#include "sql/binder.h"
#include "storage/column_table.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Canonical;
using testutil::Col;
using testutil::ContractChecked;
using testutil::Lit;
using testutil::RunPlan;

std::vector<std::vector<Value>> RunPlanBatched(Operator* root, size_t batch) {
  ExecContext ctx;
  auto rows = ExecutePlanBatched(root, &ctx, batch);
  EXPECT_TRUE(rows.ok()) << rows.status();
  if (!rows.ok()) return {};
  std::vector<std::vector<Value>> out;
  const Schema& schema = root->output_schema();
  for (const uint8_t* row : *rows) {
    TupleView view(row, &schema);
    std::vector<Value> values;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      values.push_back(view.GetValue(c));
    }
    out.push_back(std::move(values));
  }
  return out;
}

// (k INT64, v DOUBLE, s STRING) table with periodic NULLs in every column
// and a columnar image attached. k is ascending (tight zone maps), strings
// come from a vocabulary with shared prefixes so LIKE-prefix ranges span
// several dictionary entries.
std::unique_ptr<Table> MakeColumnarTable(size_t n) {
  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kDouble},
                 {"s", DataType::kString}});
  auto table = std::make_unique<Table>("ct", schema);
  const char* kVocab[] = {"alpha", "alpine", "beta",  "betamax", "gamma",
                          "gap",   "delta",  "delia", "omega",   "omen"};
  for (size_t i = 0; i < n; ++i) {
    Value k = (i % 11 == 3) ? Value::Null(DataType::kInt64)
                            : Value::Int64(static_cast<int64_t>(i));
    Value v = (i % 13 == 5)
                  ? Value::Null(DataType::kDouble)
                  : Value::Double(static_cast<double>(i % 1000) / 4.0);
    Value s = (i % 17 == 7) ? Value::Null(DataType::kString)
                            : Value::String(kVocab[(i * 7) % 10]);
    table->AppendRow({k, v, s});
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  return table;
}

// ---------------------------------------------------------------------------
// 1. Planner corpus: columnar_scan on vs off must be result-identical.
// ---------------------------------------------------------------------------

class ColumnarPlanEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  OperatorPtr MustPlan(const std::string& sql, PlannerOptions options) {
    sql::Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    PhysicalPlanner planner(catalog_, options);
    auto plan = planner.CreatePlan(*q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(*plan);
  }

  // Runs `sql` with columnar_scan off (reference) and on, across Exchange
  // degrees 1/2/8 at the parameterized batch width; results must match
  // order-insensitively (worker interleaving is nondeterministic).
  void CheckKnobInvisible(const std::string& sql) {
    for (size_t degree : {1u, 2u, 8u}) {
      PlannerOptions off;
      off.parallel_degree = degree;
      off.batch_size = GetParam();
      off.columnar_scan = false;
      OperatorPtr reference = MustPlan(sql, off);
      auto expected = Canonical(RunPlanBatched(reference.get(), GetParam()));

      PlannerOptions on = off;
      on.columnar_scan = true;
      OperatorPtr plan = MustPlan(sql, on);
      auto actual = Canonical(RunPlanBatched(plan.get(), GetParam()));
      EXPECT_EQ(expected, actual) << "degree " << degree << " sql: " << sql;
    }
  }

  static Catalog* catalog_;
};

Catalog* ColumnarPlanEquivalenceTest::catalog_ = nullptr;

TEST_P(ColumnarPlanEquivalenceTest, NumericFilterProjection) {
  CheckKnobInvisible(
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'");
}

TEST_P(ColumnarPlanEquivalenceTest, JoinAggregate) {
  CheckKnobInvisible(
      "SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'");
}

TEST_P(ColumnarPlanEquivalenceTest, StringEquality) {
  CheckKnobInvisible(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_orderpriority = '1-URGENT'");
}

TEST_P(ColumnarPlanEquivalenceTest, LikePrefix) {
  CheckKnobInvisible(
      "SELECT o_orderkey FROM orders WHERE o_orderpriority LIKE '1-%'");
}

TEST_P(ColumnarPlanEquivalenceTest, ConjunctionWithStringAndRange) {
  CheckKnobInvisible(
      "SELECT o_orderkey FROM orders "
      "WHERE o_orderpriority = '5-LOW' AND o_totalprice < 150000.0");
}

INSTANTIATE_TEST_SUITE_P(Widths, ColumnarPlanEquivalenceTest,
                         ::testing::Values(1, 7, 256, 1024));

// ---------------------------------------------------------------------------
// 2. Zone-map pruning: counters move, results don't.
// ---------------------------------------------------------------------------

struct PruneCase {
  const char* name;
  ExprPtr (*make)(const Schema&);
  uint64_t min_blocks_pruned;  // Lower bound on blocks pruned (3-block table).
};

class ZoneMapPruningTest : public ::testing::Test {
 protected:
  // Drains a ColumnScan and a SeqScan over the same table with clones of
  // `predicate` and compares; returns the ColumnScan's pruning counter.
  uint64_t CheckAndCountPruned(Table* table, const ExprPtr& predicate) {
    auto reference = std::make_unique<SeqScanOperator>(
        table, predicate ? predicate->Clone() : nullptr);
    auto expected = RunPlan(reference.get());

    auto cscan = std::make_unique<ColumnScanOperator>(
        table, predicate ? predicate->Clone() : nullptr);
    ColumnScanOperator* hook = cscan.get();
    auto actual = RunPlanBatched(cscan.get(), 1024);
    uint64_t pruned = hook->blocks_pruned();

    EXPECT_EQ(Canonical(expected), Canonical(actual));
    EXPECT_EQ(expected.size(), actual.size());
    return pruned;
  }
};

TEST_F(ZoneMapPruningTest, BlockBoundaryPredicates) {
  // 3 full blocks; k ascending, so block b covers k in roughly
  // [4096*b, 4096*(b+1)) with NULL holes.
  auto table = MakeColumnarTable(3 * kZoneBlockRows);
  const Schema& s = table->schema();
  const int64_t b = static_cast<int64_t>(kZoneBlockRows);

  struct Case {
    ExprPtr pred;
    uint64_t min_pruned;
  };
  std::vector<Case> cases;
  // Exactly the first block survives k < 4096: blocks 1 and 2 pruned.
  cases.push_back({Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(b))), 2});
  // k <= 4096 straddles the block 0/1 boundary by one row: only block 2
  // prunable.
  cases.push_back({Bin(BinaryOp::kLe, Col(s, "k"), Lit(Value::Int64(b))), 1});
  // Equality on the first row of block 1: blocks 0 and 2 pruned.
  cases.push_back({Bin(BinaryOp::kEq, Col(s, "k"), Lit(Value::Int64(b))), 2});
  // Range straddling the boundary: block 2 pruned.
  cases.push_back(
      {Bin(BinaryOp::kAnd,
           Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(b - 100))),
           Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(b + 100)))),
       1});
  // Last block only.
  cases.push_back(
      {Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(2 * b))), 2});
  // Nothing matches: everything pruned.
  cases.push_back(
      {Bin(BinaryOp::kLt, Col(s, "k"), Lit(Value::Int64(-5))), 3});
  // Everything matches: nothing prunable.
  cases.push_back(
      {Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(-5))), 0});

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    uint64_t pruned = CheckAndCountPruned(table.get(), cases[i].pred);
    EXPECT_GE(pruned, cases[i].min_pruned);
  }
}

TEST_F(ZoneMapPruningTest, AllNullBlocks) {
  // Middle block's v is entirely NULL: any comparison on v prunes it.
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>("nulls", schema);
  const size_t n = 3 * kZoneBlockRows;
  for (size_t i = 0; i < n; ++i) {
    bool middle = i >= kZoneBlockRows && i < 2 * kZoneBlockRows;
    table->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                      middle ? Value::Null(DataType::kDouble)
                             : Value::Double(static_cast<double>(i % 90))});
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  const Schema& s = table->schema();

  uint64_t pruned = CheckAndCountPruned(
      table.get(), Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(50.0))));
  EXPECT_GE(pruned, 1u);
  pruned = CheckAndCountPruned(
      table.get(), Bin(BinaryOp::kEq, Col(s, "v"), Lit(Value::Double(7.0))));
  EXPECT_GE(pruned, 1u);
}

TEST_F(ZoneMapPruningTest, StringZoneMapsInCodeSpace) {
  // String zone maps prune in dictionary-code space: a table whose string
  // column is block-sorted prunes equality probes to one block.
  Schema schema({{"s", DataType::kString}});
  auto table = std::make_unique<Table>("strs", schema);
  const char* kByBlock[] = {"aardvark", "marmot", "zebra"};
  for (size_t blk = 0; blk < 3; ++blk) {
    for (size_t i = 0; i < kZoneBlockRows; ++i) {
      table->AppendRow({Value::String(kByBlock[blk])});
    }
  }
  table->AttachColumnar(ColumnarTable::Build(*table));
  const Schema& s = table->schema();

  uint64_t pruned = CheckAndCountPruned(
      table.get(),
      Bin(BinaryOp::kEq, Col(s, "s"), Lit(Value::String("marmot"))));
  EXPECT_GE(pruned, 2u);
  // Absent literal: always_false conjunct prunes every block.
  pruned = CheckAndCountPruned(
      table.get(),
      Bin(BinaryOp::kEq, Col(s, "s"), Lit(Value::String("wombat"))));
  EXPECT_GE(pruned, 3u);
}

// ---------------------------------------------------------------------------
// 3. Dictionary: round-trip and differential fuzz vs the interpreter.
// ---------------------------------------------------------------------------

TEST(DictionaryTest, RoundTrip) {
  auto table = MakeColumnarTable(2000);
  const ColumnarTable* ct = table->columnar();
  ASSERT_NE(ct, nullptr);
  const ColumnSegment& seg = ct->segment(2);
  ASSERT_EQ(seg.type, DataType::kString);
  ASSERT_TRUE(ct->HasDict(2));

  // Sorted, unique dictionary.
  for (size_t i = 1; i < seg.dict.size(); ++i) {
    EXPECT_LT(seg.dict[i - 1], seg.dict[i]);
  }
  // Every non-NULL row decodes back to its source string; NULL rows carry
  // the zero-payload normalization.
  const Schema& schema = table->schema();
  for (size_t i = 0; i < table->num_rows(); ++i) {
    TupleView view(table->row(i), &schema);
    if (view.IsNull(2)) {
      EXPECT_EQ(seg.nulls[i], 1);
      EXPECT_EQ(seg.codes[i], 0);
    } else {
      EXPECT_EQ(seg.nulls[i], 0);
      EXPECT_EQ(seg.dict[static_cast<size_t>(seg.codes[i])],
                view.GetValue(2).string_value());
    }
  }
  // CodeOf agrees with the dictionary; absent strings report -1.
  for (size_t c = 0; c < seg.dict.size(); ++c) {
    EXPECT_EQ(ct->CodeOf(2, seg.dict[c]), static_cast<int64_t>(c));
  }
  EXPECT_EQ(ct->CodeOf(2, "no-such-string"), -1);

  // PrefixRange matches a brute-force scan of the dictionary.
  for (std::string prefix : {"a", "al", "b", "beta", "g", "z", ""}) {
    int64_t lo = 0, hi = 0;
    ASSERT_TRUE(ct->PrefixRange(2, prefix, &lo, &hi)) << prefix;
    for (size_t c = 0; c < seg.dict.size(); ++c) {
      bool has_prefix = seg.dict[c].compare(0, prefix.size(), prefix) == 0;
      bool in_range = static_cast<int64_t>(c) >= lo &&
                      static_cast<int64_t>(c) < hi;
      EXPECT_EQ(has_prefix, in_range) << prefix << " vs " << seg.dict[c];
    }
  }
}

TEST(DictionaryTest, DifferentialFuzzVsInterpreter) {
  auto table = MakeColumnarTable(5000);
  const Schema& s = table->schema();
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  // Candidate literals: vocabulary members, non-members, and prefixes.
  const char* kLiterals[] = {"alpha", "alp",  "beta", "betamax", "b",
                             "gap",   "gaps", "del",  "omega",   "zzz", ""};
  for (int trial = 0; trial < 60; ++trial) {
    std::string lit = kLiterals[next() % (sizeof(kLiterals) / 8)];
    BinaryOp op;
    ExprPtr pred;
    switch (next() % 4) {
      case 0:
        op = BinaryOp::kEq;
        pred = Bin(op, Col(s, "s"), Lit(Value::String(lit)));
        break;
      case 1:
        op = BinaryOp::kNe;
        pred = Bin(op, Col(s, "s"), Lit(Value::String(lit)));
        break;
      case 2:
        pred = Bin(BinaryOp::kLike, Col(s, "s"), Lit(Value::String(lit + "%")));
        break;
      default:
        pred = Bin(BinaryOp::kLt, Col(s, "s"), Lit(Value::String(lit)));
        break;
    }

    auto reference =
        std::make_unique<SeqScanOperator>(table.get(), pred->Clone());
    auto expected = RunPlan(reference.get());

    auto cscan =
        std::make_unique<ColumnScanOperator>(table.get(), pred->Clone());
    // String predicates must run on dictionary codes, not the interpreter.
    EXPECT_NE(cscan->compiled_predicate(), nullptr) << pred->ToString();
    auto actual = RunPlanBatched(cscan.get(), 256);

    EXPECT_EQ(Canonical(expected), Canonical(actual)) << pred->ToString();
  }
}

// ---------------------------------------------------------------------------
// Direct operator equivalence across widths, contract-checked.
// ---------------------------------------------------------------------------

class ColumnScanWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ColumnScanWidthTest, MatchesSeqScanAcrossWidths) {
  auto table = MakeColumnarTable(997);  // No width divides this evenly.
  const Schema& s = table->schema();
  std::vector<ExprPtr> preds;
  preds.push_back(nullptr);
  preds.push_back(Bin(BinaryOp::kLt, Col(s, "v"), Lit(Value::Double(100.0))));
  preds.push_back(
      Bin(BinaryOp::kEq, Col(s, "s"), Lit(Value::String("alpha"))));
  for (const ExprPtr& pred : preds) {
    OperatorPtr reference = ContractChecked(std::make_unique<SeqScanOperator>(
        table.get(), pred ? pred->Clone() : nullptr));
    OperatorPtr cscan = ContractChecked(std::make_unique<ColumnScanOperator>(
        table.get(), pred ? pred->Clone() : nullptr));
    EXPECT_EQ(Canonical(RunPlan(reference.get())),
              Canonical(RunPlanBatched(cscan.get(), GetParam())));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ColumnScanWidthTest,
                         ::testing::Values(1, 7, 256, 1024));

}  // namespace
}  // namespace bufferdb

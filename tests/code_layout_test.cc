#include <gtest/gtest.h>

#include "core/execution_group.h"
#include <algorithm>
#include <set>

#include "sim/code_layout.h"

namespace bufferdb::sim {
namespace {

uint64_t ModuleBytes(ModuleId module) {
  bufferdb::FuncSet set;
  set.AddAll(ModuleBaseFuncs(module));
  return set.TotalBytes();
}

// The calibrated layout reproduces the paper's Table 2 per-module footprints.
TEST(CodeLayoutTest, Table2ScanFootprints) {
  EXPECT_EQ(ModuleBytes(ModuleId::kSeqScan), 9000u);           // 9K
  EXPECT_EQ(ModuleBytes(ModuleId::kSeqScanFiltered), 13000u);  // 13K
}

TEST(CodeLayoutTest, Table2IndexAndSort) {
  EXPECT_EQ(ModuleBytes(ModuleId::kIndexScan), 14000u);  // 14K
  EXPECT_EQ(ModuleBytes(ModuleId::kSort), 14000u);       // 14K
}

TEST(CodeLayoutTest, Table2Joins) {
  EXPECT_EQ(ModuleBytes(ModuleId::kNestLoopJoin), 11000u);   // 11K
  EXPECT_EQ(ModuleBytes(ModuleId::kMergeJoin), 12000u);      // 12K
  EXPECT_EQ(ModuleBytes(ModuleId::kHashJoinBuild), 12000u);  // 12K
  EXPECT_EQ(ModuleBytes(ModuleId::kHashJoinProbe), 10000u);  // 10K
}

TEST(CodeLayoutTest, Table2AggregationBase) {
  EXPECT_EQ(ModuleBytes(ModuleId::kAggregation), 10000u);  // base 10K
}

TEST(CodeLayoutTest, Table2AggregateFunctionSizes) {
  const CodeLayout& layout = CodeLayout::Default();
  EXPECT_LT(layout.info(FuncId::kAggCount).size_bytes, 1000u);  // <1K
  EXPECT_EQ(layout.info(FuncId::kAggMin).size_bytes, 1600u);    // 1.6K
  EXPECT_EQ(layout.info(FuncId::kAggMax).size_bytes, 1600u);    // 1.6K
  EXPECT_EQ(layout.info(FuncId::kAggSum).size_bytes, 2700u);    // 2.7K
}

TEST(CodeLayoutTest, Table2BufferIsLightWeight) {
  EXPECT_LT(ModuleBytes(ModuleId::kBuffer), 1000u);  // <1K
}

TEST(CodeLayoutTest, FunctionsDoNotOverlapAndAreLineAligned) {
  const CodeLayout& layout = CodeLayout::Default();
  uint64_t prev_end = 0;
  for (int i = 0; i < kNumFuncIds; ++i) {
    const FuncInfo& f = layout.info(static_cast<FuncId>(i));
    EXPECT_GE(f.base_addr, prev_end) << f.name;
    EXPECT_EQ(f.base_addr % 64, 0u) << f.name;  // Line aligned.
    EXPECT_GT(f.branch_sites, 0u) << f.name;
    EXPECT_EQ(f.lines, (f.size_bytes + 63) / 64) << f.name;
    prev_end = CodeLayout::LineAddress(f, f.lines - 1) + 64;
  }
}

TEST(CodeLayoutTest, StridedLinesMapUniformlyAcrossL1Sets) {
  // The 29-line stride is coprime with the 32 sets of a 16KB/8-way/64B
  // cache: consecutive lines of a function hit consecutive-ish sets and a
  // function never piles onto one set.
  const CodeLayout& layout = CodeLayout::Default();
  const FuncInfo& f = layout.info(FuncId::kIndexCore);
  int per_set[32] = {0};
  for (uint32_t k = 0; k < f.lines; ++k) {
    per_set[(CodeLayout::LineAddress(f, k) / 64) % 32]++;
  }
  int max_load = 0, min_load = 1 << 30;
  for (int load : per_set) {
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  EXPECT_LE(max_load - min_load, 1);
}

TEST(CodeLayoutTest, LinesSpreadOverManyPages) {
  // The strided layout gives a module a page working set much larger than
  // its byte footprint / 4096 — the ITLB behaviour the paper measures.
  const CodeLayout& layout = CodeLayout::Default();
  const FuncInfo& f = layout.info(FuncId::kSortCore);  // 7000 bytes.
  std::set<uint64_t> pages;
  for (uint32_t k = 0; k < f.lines; ++k) {
    pages.insert(CodeLayout::LineAddress(f, k) / 4096);
  }
  EXPECT_GT(pages.size(), 40u);  // vs 2 pages if contiguous.
}

TEST(CodeLayoutTest, SharedFunctionsCountedOnceInCombination) {
  // Scan(pred) + Aggregation share exec_common and expr_arith; the combined
  // footprint must be smaller than the sum.
  bufferdb::FuncSet combined;
  combined.AddAll(ModuleBaseFuncs(ModuleId::kSeqScanFiltered));
  combined.AddAll(ModuleBaseFuncs(ModuleId::kAggregation));
  EXPECT_LT(combined.TotalBytes(),
            ModuleBytes(ModuleId::kSeqScanFiltered) +
                ModuleBytes(ModuleId::kAggregation));
  EXPECT_EQ(combined.TotalBytes(), 15000u);  // 13K + 10K - 8K shared.
}

TEST(CodeLayoutTest, Query1CombinedExceedsL1WhileQuery2Fits) {
  // The §7.2 footprint-analysis story: Query 2 (COUNT only) fits in a 16KB
  // trace cache together with a buffer operator; Query 1 (SUM/AVG/COUNT)
  // does not.
  bufferdb::FuncSet query2;
  query2.AddAll(ModuleBaseFuncs(ModuleId::kSeqScanFiltered));
  query2.AddAll(ModuleBaseFuncs(ModuleId::kAggregation));
  query2.Add(FuncId::kAggCount);
  query2.AddAll(ModuleBaseFuncs(ModuleId::kBuffer));
  EXPECT_LE(query2.TotalBytes(), 16384u);

  bufferdb::FuncSet query1 = query2;
  query1.Add(FuncId::kAggSum);
  query1.Add(FuncId::kAggAvgExtra);
  EXPECT_GT(query1.TotalBytes(), 16384u);
}

TEST(CodeLayoutTest, ModuleNamesAreStable) {
  EXPECT_STREQ(ModuleName(ModuleId::kSeqScanFiltered), "Scan(pred)");
  EXPECT_STREQ(ModuleName(ModuleId::kBuffer), "Buffer");
  EXPECT_STREQ(FuncName(FuncId::kExecCommon), "exec_common");
}

TEST(CodeLayoutTest, ModuleIdFromNameRoundTripsEveryModule) {
  // footprint_audit.py keys its manifest and calibration files on these
  // names; every id must round-trip and no two modules may share a name.
  std::set<std::string> seen;
  for (int m = 0; m < kNumModuleIds; ++m) {
    auto module = static_cast<ModuleId>(m);
    const char* name = ModuleName(module);
    EXPECT_TRUE(seen.insert(name).second) << name;
    ModuleId back;
    ASSERT_TRUE(ModuleIdFromName(name, &back)) << name;
    EXPECT_EQ(back, module) << name;
  }
  ModuleId out;
  EXPECT_FALSE(ModuleIdFromName("NoSuchModule", &out));
  EXPECT_FALSE(ModuleIdFromName("", &out));
  EXPECT_FALSE(ModuleIdFromName("scan", &out));  // Case-sensitive.
}

TEST(CodeLayoutTest, FuncIdFromNameRoundTripsEveryFunc) {
  std::set<std::string> seen;
  for (int f = 0; f < kNumFuncIds; ++f) {
    auto func = static_cast<FuncId>(f);
    const char* name = FuncName(func);
    EXPECT_TRUE(seen.insert(name).second) << name;
    FuncId back;
    ASSERT_TRUE(FuncIdFromName(name, &back)) << name;
    EXPECT_EQ(back, func) << name;
  }
  FuncId out;
  EXPECT_FALSE(FuncIdFromName("no_such_func", &out));
  EXPECT_FALSE(FuncIdFromName("", &out));
}

// Restores the built-in layout even when an EXPECT fails mid-test, so the
// Table-2 assertions above never observe a leftover calibration.
class CalibrationGuard {
 public:
  ~CalibrationGuard() { CodeLayout::ResetCalibration(); }
};

TEST(CodeLayoutTest, LoadCalibrationPinsFunctionAndModuleSizes) {
  CalibrationGuard guard;
  std::string error;
  ASSERT_TRUE(CodeLayout::LoadCalibrationText(
      "# audited footprints\n"
      "func scan_core 4096\n"
      "module Buffer 20400\n",
      &error))
      << error;
  const CodeLayout& layout = CodeLayout::Default();
  // A `func` line pins that function exactly (rounded to nothing: bytes are
  // taken verbatim), and derived line/branch-site counts follow.
  EXPECT_EQ(layout.info(FuncId::kScanCore).size_bytes, 4096u);
  EXPECT_EQ(layout.info(FuncId::kScanCore).lines, 64u);
  EXPECT_GT(layout.info(FuncId::kScanCore).branch_sites, 0u);
  // A `module` line retargets the module's shared-once byte total.
  bufferdb::FuncSet buffer_set;
  buffer_set.AddAll(ModuleBaseFuncs(ModuleId::kBuffer));
  EXPECT_NEAR(static_cast<double>(buffer_set.TotalBytes()), 20400.0, 64.0);
  // Layout invariants survive calibration.
  uint64_t prev_end = 0;
  for (int i = 0; i < kNumFuncIds; ++i) {
    const FuncInfo& f = layout.info(static_cast<FuncId>(i));
    EXPECT_GE(f.base_addr, prev_end) << f.name;
    EXPECT_EQ(f.base_addr % 64, 0u) << f.name;
    prev_end = CodeLayout::LineAddress(f, f.lines - 1) + 64;
  }

  CodeLayout::ResetCalibration();
  EXPECT_EQ(CodeLayout::Default().info(FuncId::kScanCore).size_bytes, 3500u);
}

TEST(CodeLayoutTest, LoadCalibrationRejectsBadInput) {
  CalibrationGuard guard;
  std::string error;
  // Unknown module name (the drift the audit's gate also catches).
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("module Nope 1000\n", &error));
  EXPECT_NE(error.find("Nope"), std::string::npos) << error;
  // Unknown function name.
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("func nope 1000\n", &error));
  // Malformed lines: missing size, non-numeric size, unknown directive.
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("func scan_core\n", &error));
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("func scan_core x\n", &error));
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("resize Scan 9000\n", &error));
  // Non-positive sizes.
  EXPECT_FALSE(CodeLayout::LoadCalibrationText("func scan_core 0\n", &error));
  EXPECT_FALSE(
      CodeLayout::LoadCalibrationText("module Buffer -5\n", &error));
  // A failed load must not install a partial layout.
  EXPECT_EQ(CodeLayout::Default().info(FuncId::kScanCore).size_bytes, 3500u);
}

TEST(CodeLayoutTest, LoadCalibrationMissingFileFails) {
  CalibrationGuard guard;
  std::string error;
  EXPECT_FALSE(
      CodeLayout::LoadCalibration("/nonexistent/calibration.txt", &error));
  EXPECT_FALSE(error.empty());
}

TEST(FuncSetTest, BasicSetOperations) {
  bufferdb::FuncSet set;
  EXPECT_TRUE(set.empty());
  set.Add(FuncId::kScanCore);
  set.Add(FuncId::kScanCore);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.Contains(FuncId::kScanCore));
  EXPECT_FALSE(set.Contains(FuncId::kSortCore));

  bufferdb::FuncSet other;
  other.Add(FuncId::kSortCore);
  set.UnionWith(other);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.ToVector().size(), 2u);
}

}  // namespace
}  // namespace bufferdb::sim

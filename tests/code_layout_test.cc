#include <gtest/gtest.h>

#include "core/execution_group.h"
#include <algorithm>
#include <set>

#include "sim/code_layout.h"

namespace bufferdb::sim {
namespace {

uint64_t ModuleBytes(ModuleId module) {
  bufferdb::FuncSet set;
  set.AddAll(ModuleBaseFuncs(module));
  return set.TotalBytes();
}

// The calibrated layout reproduces the paper's Table 2 per-module footprints.
TEST(CodeLayoutTest, Table2ScanFootprints) {
  EXPECT_EQ(ModuleBytes(ModuleId::kSeqScan), 9000u);           // 9K
  EXPECT_EQ(ModuleBytes(ModuleId::kSeqScanFiltered), 13000u);  // 13K
}

TEST(CodeLayoutTest, Table2IndexAndSort) {
  EXPECT_EQ(ModuleBytes(ModuleId::kIndexScan), 14000u);  // 14K
  EXPECT_EQ(ModuleBytes(ModuleId::kSort), 14000u);       // 14K
}

TEST(CodeLayoutTest, Table2Joins) {
  EXPECT_EQ(ModuleBytes(ModuleId::kNestLoopJoin), 11000u);   // 11K
  EXPECT_EQ(ModuleBytes(ModuleId::kMergeJoin), 12000u);      // 12K
  EXPECT_EQ(ModuleBytes(ModuleId::kHashJoinBuild), 12000u);  // 12K
  EXPECT_EQ(ModuleBytes(ModuleId::kHashJoinProbe), 10000u);  // 10K
}

TEST(CodeLayoutTest, Table2AggregationBase) {
  EXPECT_EQ(ModuleBytes(ModuleId::kAggregation), 10000u);  // base 10K
}

TEST(CodeLayoutTest, Table2AggregateFunctionSizes) {
  const CodeLayout& layout = CodeLayout::Default();
  EXPECT_LT(layout.info(FuncId::kAggCount).size_bytes, 1000u);  // <1K
  EXPECT_EQ(layout.info(FuncId::kAggMin).size_bytes, 1600u);    // 1.6K
  EXPECT_EQ(layout.info(FuncId::kAggMax).size_bytes, 1600u);    // 1.6K
  EXPECT_EQ(layout.info(FuncId::kAggSum).size_bytes, 2700u);    // 2.7K
}

TEST(CodeLayoutTest, Table2BufferIsLightWeight) {
  EXPECT_LT(ModuleBytes(ModuleId::kBuffer), 1000u);  // <1K
}

TEST(CodeLayoutTest, FunctionsDoNotOverlapAndAreLineAligned) {
  const CodeLayout& layout = CodeLayout::Default();
  uint64_t prev_end = 0;
  for (int i = 0; i < kNumFuncIds; ++i) {
    const FuncInfo& f = layout.info(static_cast<FuncId>(i));
    EXPECT_GE(f.base_addr, prev_end) << f.name;
    EXPECT_EQ(f.base_addr % 64, 0u) << f.name;  // Line aligned.
    EXPECT_GT(f.branch_sites, 0u) << f.name;
    EXPECT_EQ(f.lines, (f.size_bytes + 63) / 64) << f.name;
    prev_end = CodeLayout::LineAddress(f, f.lines - 1) + 64;
  }
}

TEST(CodeLayoutTest, StridedLinesMapUniformlyAcrossL1Sets) {
  // The 29-line stride is coprime with the 32 sets of a 16KB/8-way/64B
  // cache: consecutive lines of a function hit consecutive-ish sets and a
  // function never piles onto one set.
  const CodeLayout& layout = CodeLayout::Default();
  const FuncInfo& f = layout.info(FuncId::kIndexCore);
  int per_set[32] = {0};
  for (uint32_t k = 0; k < f.lines; ++k) {
    per_set[(CodeLayout::LineAddress(f, k) / 64) % 32]++;
  }
  int max_load = 0, min_load = 1 << 30;
  for (int load : per_set) {
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  EXPECT_LE(max_load - min_load, 1);
}

TEST(CodeLayoutTest, LinesSpreadOverManyPages) {
  // The strided layout gives a module a page working set much larger than
  // its byte footprint / 4096 — the ITLB behaviour the paper measures.
  const CodeLayout& layout = CodeLayout::Default();
  const FuncInfo& f = layout.info(FuncId::kSortCore);  // 7000 bytes.
  std::set<uint64_t> pages;
  for (uint32_t k = 0; k < f.lines; ++k) {
    pages.insert(CodeLayout::LineAddress(f, k) / 4096);
  }
  EXPECT_GT(pages.size(), 40u);  // vs 2 pages if contiguous.
}

TEST(CodeLayoutTest, SharedFunctionsCountedOnceInCombination) {
  // Scan(pred) + Aggregation share exec_common and expr_arith; the combined
  // footprint must be smaller than the sum.
  bufferdb::FuncSet combined;
  combined.AddAll(ModuleBaseFuncs(ModuleId::kSeqScanFiltered));
  combined.AddAll(ModuleBaseFuncs(ModuleId::kAggregation));
  EXPECT_LT(combined.TotalBytes(),
            ModuleBytes(ModuleId::kSeqScanFiltered) +
                ModuleBytes(ModuleId::kAggregation));
  EXPECT_EQ(combined.TotalBytes(), 15000u);  // 13K + 10K - 8K shared.
}

TEST(CodeLayoutTest, Query1CombinedExceedsL1WhileQuery2Fits) {
  // The §7.2 footprint-analysis story: Query 2 (COUNT only) fits in a 16KB
  // trace cache together with a buffer operator; Query 1 (SUM/AVG/COUNT)
  // does not.
  bufferdb::FuncSet query2;
  query2.AddAll(ModuleBaseFuncs(ModuleId::kSeqScanFiltered));
  query2.AddAll(ModuleBaseFuncs(ModuleId::kAggregation));
  query2.Add(FuncId::kAggCount);
  query2.AddAll(ModuleBaseFuncs(ModuleId::kBuffer));
  EXPECT_LE(query2.TotalBytes(), 16384u);

  bufferdb::FuncSet query1 = query2;
  query1.Add(FuncId::kAggSum);
  query1.Add(FuncId::kAggAvgExtra);
  EXPECT_GT(query1.TotalBytes(), 16384u);
}

TEST(CodeLayoutTest, ModuleNamesAreStable) {
  EXPECT_STREQ(ModuleName(ModuleId::kSeqScanFiltered), "Scan(pred)");
  EXPECT_STREQ(ModuleName(ModuleId::kBuffer), "Buffer");
  EXPECT_STREQ(FuncName(FuncId::kExecCommon), "exec_common");
}

TEST(FuncSetTest, BasicSetOperations) {
  bufferdb::FuncSet set;
  EXPECT_TRUE(set.empty());
  set.Add(FuncId::kScanCore);
  set.Add(FuncId::kScanCore);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.Contains(FuncId::kScanCore));
  EXPECT_FALSE(set.Contains(FuncId::kSortCore));

  bufferdb::FuncSet other;
  other.Add(FuncId::kSortCore);
  set.UnionWith(other);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.ToVector().size(), 2u);
}

}  // namespace
}  // namespace bufferdb::sim

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/buffer_operator.h"
#include "core/plan_refiner.h"
#include "exec/aggregation.h"
#include "exec/hash_join.h"
#include "exec/index_scan.h"
#include "exec/nested_loop_join.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "test_util.h"

namespace bufferdb {
namespace {

using testutil::Bin;
using testutil::Col;
using testutil::Lit;
using testutil::MakeKvTable;

bool IsBuffer(const Operator* op) {
  return op->module_id() == sim::ModuleId::kBuffer;
}

// Query-1 shaped plan: Agg(SUM, AVG, COUNT) over filtered Scan.
OperatorPtr Query1Plan(Table* table, double scan_rows) {
  const Schema& s = table->schema();
  auto scan = std::make_unique<SeqScanOperator>(
      table, Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0))));
  scan->set_estimated_rows(scan_rows);
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, Col(s, "v"), "s"});
  specs.push_back(AggSpec{AggFunc::kAvg, Col(s, "v"), "a"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  auto agg =
      std::make_unique<AggregationOperator>(std::move(scan), std::move(specs));
  agg->set_estimated_rows(1);
  return agg;
}

// Query-2 shaped plan: Agg(COUNT) over filtered Scan — fits in L1I.
OperatorPtr Query2Plan(Table* table, double scan_rows) {
  const Schema& s = table->schema();
  auto scan = std::make_unique<SeqScanOperator>(
      table, Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0))));
  scan->set_estimated_rows(scan_rows);
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  auto agg =
      std::make_unique<AggregationOperator>(std::move(scan), std::move(specs));
  agg->set_estimated_rows(1);
  return agg;
}

TEST(PlanRefinerTest, Query1GetsBufferAboveScan) {
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementReport report;
  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(Query1Plan(table.get(), 1e6), &report);

  // Agg -> Buffer -> Scan (Fig. 5b).
  EXPECT_EQ(refined->module_id(), sim::ModuleId::kAggregation);
  ASSERT_EQ(refined->num_children(), 1u);
  EXPECT_TRUE(IsBuffer(refined->child(0)));
  EXPECT_EQ(refined->child(0)->child(0)->module_id(),
            sim::ModuleId::kSeqScanFiltered);
  EXPECT_EQ(report.buffers_added, 1);
  ASSERT_EQ(report.groups.size(), 2u);
  EXPECT_TRUE(report.groups[0].buffered);
  EXPECT_FALSE(report.groups[1].buffered);  // Top group: output to client.
}

TEST(PlanRefinerTest, Query2StaysUnbuffered) {
  // Combined Scan+Agg(COUNT)+Buffer footprint fits in L1I: one execution
  // group, no buffer (Fig. 9's conclusion).
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementReport report;
  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(Query2Plan(table.get(), 1e6), &report);
  EXPECT_EQ(report.buffers_added, 0);
  EXPECT_EQ(refined->module_id(), sim::ModuleId::kAggregation);
  EXPECT_EQ(refined->child(0)->module_id(), sim::ModuleId::kSeqScanFiltered);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].op_labels.size(), 2u);
}

TEST(PlanRefinerTest, LowCardinalityScanNotBuffered) {
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementOptions options;
  options.cardinality_threshold = 600;
  PlanRefiner refiner(options);
  RefinementReport report;
  OperatorPtr refined = refiner.Refine(Query1Plan(table.get(), 100), &report);
  EXPECT_EQ(report.buffers_added, 0);
  EXPECT_FALSE(IsBuffer(refined->child(0)));
}

TEST(PlanRefinerTest, UnknownCardinalityTreatedAsLarge) {
  auto table = MakeKvTable("t", {{1, 1}});
  OperatorPtr plan = Query1Plan(table.get(), 1e6);
  plan->child(0)->set_estimated_rows(-1);
  RefinementReport report;
  PlanRefiner refiner;
  refiner.Refine(std::move(plan), &report);
  EXPECT_EQ(report.buffers_added, 1);
}

TEST(PlanRefinerTest, SortIsNeverInAGroupButItsInputIsBuffered) {
  // Sort over a filtered scan: the pipeline below the sort thrashes
  // (Scan 13K + Sort 14K > 16K), so the scan gets a buffer; the sort itself
  // is a pipeline breaker and joins no group.
  auto table = MakeKvTable("t", {{1, 1}});
  const Schema& s = table->schema();
  auto scan = std::make_unique<SeqScanOperator>(
      table.get(), Bin(BinaryOp::kGe, Col(s, "k"), Lit(Value::Int64(0))));
  scan->set_estimated_rows(1e6);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(s, "k"), false});
  auto sort = std::make_unique<SortOperator>(std::move(scan), std::move(keys));
  sort->set_estimated_rows(1e6);

  RefinementReport report;
  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(std::move(sort), &report);
  EXPECT_EQ(refined->module_id(), sim::ModuleId::kSort);
  EXPECT_TRUE(IsBuffer(refined->child(0)));
  EXPECT_EQ(report.buffers_added, 1);
}

TEST(PlanRefinerTest, ExcludedInnerIndexScanNeverBuffered) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeKvTable("r", {{1, 1}, {2, 2}})).ok());
  ASSERT_TRUE(catalog.CreateIndex("r_k", "r", "k", /*unique=*/true).ok());
  auto left = MakeKvTable("l", {{1, 1}});
  const Schema& ls = left->schema();

  auto outer = std::make_unique<SeqScanOperator>(
      left.get(), Bin(BinaryOp::kGe, Col(ls, "k"), Lit(Value::Int64(0))));
  outer->set_estimated_rows(1e6);
  auto inner = std::make_unique<IndexScanOperator>(
      catalog.GetIndex("r_k"), std::nullopt, std::nullopt, nullptr);
  inner->set_excluded_from_buffering(true);
  inner->set_estimated_rows(1e6);  // Even with a huge estimate: excluded.
  auto join = std::make_unique<IndexNestLoopJoinOperator>(
      std::move(outer), std::move(inner), Col(ls, "k"));
  join->set_estimated_rows(1e6);

  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  auto agg = std::make_unique<AggregationOperator>(std::move(join),
                                                   std::move(specs));
  agg->set_estimated_rows(1);

  RefinementReport report;
  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(std::move(agg), &report);

  // Fig. 15(b): buffer above the outer scan; no buffer above the inner
  // index scan. NestLoop (11K) cannot merge with the 13K scan group nor
  // with the aggregation, so it forms its own buffered group.
  const Operator* maybe_buffer = refined->child(0);
  ASSERT_TRUE(IsBuffer(maybe_buffer));
  const Operator* nlj = maybe_buffer->child(0);
  ASSERT_EQ(nlj->module_id(), sim::ModuleId::kNestLoopJoin);
  EXPECT_TRUE(IsBuffer(nlj->child(0)));
  EXPECT_EQ(nlj->child(1)->module_id(), sim::ModuleId::kIndexScan);
  EXPECT_EQ(report.buffers_added, 2);
}

TEST(PlanRefinerTest, HashJoinBuildSideScanBuffered) {
  // Fig. 16: both the probe-side scan and the build-side scan get buffers
  // (the build input is blocking but the pipeline below it still thrashes
  // against the build code).
  auto lineitem = MakeKvTable("l", {{1, 1}});
  auto orders = MakeKvTable("o", {{1, 1}});
  const Schema& ls = lineitem->schema();
  const Schema& os = orders->schema();

  auto probe_scan = std::make_unique<SeqScanOperator>(
      lineitem.get(), Bin(BinaryOp::kGe, Col(ls, "k"), Lit(Value::Int64(0))));
  probe_scan->set_estimated_rows(1e6);
  auto build_scan = std::make_unique<SeqScanOperator>(orders.get(), nullptr);
  build_scan->set_estimated_rows(1e6);
  auto join = std::make_unique<HashJoinOperator>(
      std::move(probe_scan), std::move(build_scan), Col(ls, "k"),
      Col(os, "k"));
  join->set_estimated_rows(1e6);

  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, MakeColumnRefUnchecked(
                                             1, DataType::kDouble, "v"),
                          "s"});
  specs.push_back(AggSpec{AggFunc::kAvg, MakeColumnRefUnchecked(
                                             3, DataType::kDouble, "v2"),
                          "a"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "c"});
  auto agg = std::make_unique<AggregationOperator>(std::move(join),
                                                   std::move(specs));
  agg->set_estimated_rows(1);

  RefinementReport report;
  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(std::move(agg), &report);

  const Operator* hj = refined->child(0);
  if (IsBuffer(hj)) hj = hj->child(0);  // Probe group itself is buffered.
  ASSERT_EQ(hj->module_id(), sim::ModuleId::kHashJoinProbe);
  EXPECT_TRUE(IsBuffer(hj->child(0)));  // Probe-side scan buffered.
  EXPECT_TRUE(IsBuffer(hj->child(1)));  // Build-side scan buffered.
  EXPECT_GE(report.buffers_added, 2);
}

TEST(PlanRefinerTest, MergeDisabledBuffersEveryEligibleOperator) {
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementOptions options;
  options.merge_execution_groups = false;
  PlanRefiner refiner(options);
  RefinementReport report;
  OperatorPtr refined = refiner.Refine(Query2Plan(table.get(), 1e6), &report);
  // Even Query 2's small pipeline gets a buffer in the ablation mode.
  EXPECT_EQ(report.buffers_added, 1);
  EXPECT_TRUE(IsBuffer(refined->child(0)));
}

TEST(PlanRefinerTest, RefinedPlanStillExecutesCorrectly) {
  std::vector<std::pair<int64_t, double>> rows;
  for (int i = 0; i < 3000; ++i) rows.push_back({i, 1.0});
  auto table = MakeKvTable("t", rows);
  OperatorPtr original = Query1Plan(table.get(), 3000);
  ExecContext ctx1;
  auto expected = ExecutePlanRows(original.get(), &ctx1);
  ASSERT_TRUE(expected.ok());

  PlanRefiner refiner;
  OperatorPtr refined = refiner.Refine(Query1Plan(table.get(), 3000));
  ExecContext ctx2;
  auto got = ExecutePlanRows(refined.get(), &ctx2);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0][0], (*expected)[0][0]);
  EXPECT_EQ((*got)[0][2], Value::Int64(3000));
}

TEST(PlanRefinerTest, BufferSizeOptionPropagates) {
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementOptions options;
  options.buffer_size = 4242;
  PlanRefiner refiner(options);
  OperatorPtr refined = refiner.Refine(Query1Plan(table.get(), 1e6));
  auto* buffer = dynamic_cast<BufferOperator*>(refined->child(0));
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->buffer_size(), 4242u);
}

TEST(PlanRefinerTest, ReportFootprintsAreShared) {
  auto table = MakeKvTable("t", {{1, 1}});
  RefinementReport report;
  PlanRefiner refiner;
  refiner.Refine(Query2Plan(table.get(), 1e6), &report);
  ASSERT_EQ(report.groups.size(), 1u);
  // Scan(13K) + Agg(10K + count) share 8K: combined well below the sum.
  EXPECT_LE(report.groups[0].funcs.TotalBytes(), 16384u);
  EXPECT_GE(report.groups[0].funcs.TotalBytes(), 13000u);
}

}  // namespace
}  // namespace bufferdb

namespace bufferdb {
namespace {

TEST(StaticFootprintRefinementTest, StaticEstimatesOverBuffer) {
  // With static footprints, Query 2's Scan+Agg no longer "fits" and the
  // refiner inserts a buffer it would not insert with dynamic footprints.
  auto table = testutil::MakeKvTable("t", {{1, 1}});
  RefinementOptions options;
  options.assume_static_footprints = true;
  PlanRefiner refiner(options);
  RefinementReport report;
  refiner.Refine(Query2Plan(table.get(), 1e6), &report);
  EXPECT_EQ(report.buffers_added, 1);

  PlanRefiner dynamic_refiner;
  RefinementReport dynamic_report;
  dynamic_refiner.Refine(Query2Plan(table.get(), 1e6), &dynamic_report);
  EXPECT_EQ(dynamic_report.buffers_added, 0);
}

}  // namespace
}  // namespace bufferdb

// Tests for the ContractCheckedOperator debug wrapper (DESIGN.md section 9.2).
//
// This translation unit force-enables checking regardless of build type, so
// every violation class is exercised in Release CI too; the companion TU
// contract_check_release_ut.cc force-disables it and proves the wrapper
// macro compiles out to the identity expression.
#ifndef BUFFERDB_CHECK_CONTRACTS
#define BUFFERDB_CHECK_CONTRACTS
#endif
#include "exec/contract_check.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "exec/seq_scan.h"
#include "test_util.h"

namespace bufferdb {
namespace {

// Minimal well-behaved operator: emits `rows` copies of a static payload.
// Self-contained so the wrapper tests do not depend on scan internals.
class CountingOp final : public Operator {
 public:
  explicit CountingOp(size_t rows, bool fail_open = false)
      : schema_({{"k", DataType::kInt64}}),
        rows_(rows),
        fail_open_(fail_open) {}

  [[nodiscard]] Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    emitted_ = 0;
    if (fail_open_) return Status::Internal("CountingOp told to fail Open");
    return Status::OK();
  }
  const uint8_t* Next() override {
    if (emitted_ >= rows_) return nullptr;
    ++emitted_;
    return payload_;
  }
  void Close() override {}
  const Schema& output_schema() const override { return schema_; }
  sim::ModuleId module_id() const override { return sim::ModuleId::kSeqScan; }

 private:
  Schema schema_;
  size_t rows_;
  bool fail_open_;
  size_t emitted_ = 0;
  uint8_t payload_[8] = {0};
};

OperatorPtr Checked(size_t rows, bool fail_open = false) {
  return std::make_unique<ContractCheckedOperator>(
      std::make_unique<CountingOp>(rows, fail_open));
}

TEST(ContractCheckTest, NextBeforeOpenThrows) {
  auto op = Checked(3);
  EXPECT_THROW(op->Next(), ContractViolation);
}

TEST(ContractCheckTest, NextBatchBeforeOpenThrows) {
  auto op = Checked(3);
  const uint8_t* out[4];
  EXPECT_THROW(op->NextBatch(out, 4), ContractViolation);
}

TEST(ContractCheckTest, RescanBeforeOpenThrows) {
  auto op = Checked(3);
  EXPECT_THROW({ Status st = op->Rescan(); (void)st; }, ContractViolation);
}

TEST(ContractCheckTest, CloseBeforeOpenThrows) {
  auto op = Checked(3);
  EXPECT_THROW(op->Close(), ContractViolation);
}

TEST(ContractCheckTest, UseAfterCloseThrows) {
  auto op = Checked(3);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());
  op->Close();
  EXPECT_THROW(op->Next(), ContractViolation);
  const uint8_t* out[4];
  EXPECT_THROW(op->NextBatch(out, 4), ContractViolation);
  EXPECT_THROW({ Status st = op->Rescan(); (void)st; }, ContractViolation);
}

TEST(ContractCheckTest, DoubleOpenThrows) {
  auto op = Checked(3);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());
  EXPECT_THROW({ Status st = op->Open(&ctx); (void)st; }, ContractViolation);
  op->Close();
}

TEST(ContractCheckTest, DoubleCloseThrows) {
  auto op = Checked(3);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());
  op->Close();
  EXPECT_THROW(op->Close(), ContractViolation);
}

TEST(ContractCheckTest, ReopenAfterCloseIsLegal) {
  auto op = Checked(2);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());
  EXPECT_NE(op->Next(), nullptr);
  op->Close();
  ASSERT_TRUE(op->Open(&ctx).ok());
  EXPECT_NE(op->Next(), nullptr);
  op->Close();
}

TEST(ContractCheckTest, FailedOpenDoesNotOpen) {
  auto op = Checked(3, /*fail_open=*/true);
  ExecContext ctx;
  Status st = op->Open(&ctx);
  EXPECT_FALSE(st.ok());
  // The operator never reached the open state, so pulling is a violation.
  EXPECT_THROW(op->Next(), ContractViolation);
}

TEST(ContractCheckTest, StaleBatchSliceIsPoisoned) {
  auto op = Checked(8);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());

  const uint8_t* out[4] = {nullptr, nullptr, nullptr, nullptr};
  size_t n1 = op->NextBatch(out, 4);
  ASSERT_EQ(n1, 4u);
  const uint8_t* live = out[0];
  EXPECT_NE(live, ContractCheckedOperator::PoisonPointer());

  // The second transfer call must poison the previous slice in place:
  // anyone still reading the old out[] entries sees the poison pointer,
  // not a stale (reused) row.
  const uint8_t* out2[4];
  size_t n2 = op->NextBatch(out2, 4);
  ASSERT_EQ(n2, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], ContractCheckedOperator::PoisonPointer())
        << "stale slice entry " << i << " was not poisoned";
  }
  op->Close();
}

TEST(ContractCheckTest, NextAlsoPoisonsPreviousSlice) {
  auto op = Checked(8);
  ExecContext ctx;
  ASSERT_TRUE(op->Open(&ctx).ok());
  const uint8_t* out[2] = {nullptr, nullptr};
  ASSERT_EQ(op->NextBatch(out, 2), 2u);
  EXPECT_NE(op->Next(), nullptr);
  EXPECT_EQ(out[0], ContractCheckedOperator::PoisonPointer());
  EXPECT_EQ(out[1], ContractCheckedOperator::PoisonPointer());
  op->Close();
}

TEST(ContractCheckTest, WrappedPlanProducesSameRows) {
  auto table = testutil::MakeKvTable("t", {{1, 1.0}, {2, 2.0}, {3, 3.0}});
  auto scan = std::make_unique<SeqScanOperator>(table.get(), nullptr);
  OperatorPtr wrapped = BUFFERDB_WRAP_CONTRACT_CHECKED(std::move(scan));
  EXPECT_EQ(wrapped->label(), "ContractChecked(" +
                                  wrapped->child(0)->label() + ")");
  auto rows = testutil::RunPlan(wrapped.get());
  EXPECT_EQ(rows.size(), 3u);
}

TEST(ContractCheckTest, MacroWrapsWhenCheckingEnabled) {
  // This TU defines BUFFERDB_CHECK_CONTRACTS, so the macro must wrap.
  OperatorPtr op = BUFFERDB_WRAP_CONTRACT_CHECKED(
      std::make_unique<CountingOp>(1));
  EXPECT_NE(dynamic_cast<ContractCheckedOperator*>(op.get()), nullptr);
}

}  // namespace
}  // namespace bufferdb

// Stress/regression tests for the TupleQueue shutdown protocol: Push()
// racing Close()/Cancel()/ProducerDone() under many producers and
// consumers. These are the tests the `tsan` CI job exists for — run them
// under -fsanitize=thread to prove the protocol has no data races, not
// just no lost batches.
#include "parallel/tuple_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace bufferdb::parallel {
namespace {

// Encodes (producer, sequence) into a fake row pointer so the consumer can
// verify exactly which batches made it across the thread boundary.
const uint8_t* FakeRow(size_t producer, size_t seq) {
  return reinterpret_cast<const uint8_t*>((producer << 20) | (seq + 1));
}

constexpr size_t kProducers = 8;
constexpr size_t kBatchesPerProducer = 200;
constexpr size_t kQueueBound = 4;  // Small: forces Push to block often.

TEST(TupleQueueTest, AllBatchesDeliveredOnNormalCompletion) {
  TupleQueue queue(kQueueBound);
  std::atomic<size_t> pushed{0};
  for (size_t p = 0; p < kProducers; ++p) queue.AddProducer();

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &pushed, p] {
      for (size_t i = 0; i < kBatchesPerProducer; ++i) {
        TupleQueue::Batch batch{FakeRow(p, i)};
        ASSERT_TRUE(queue.Push(std::move(batch)));
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
      queue.ProducerDone();
    });
  }

  size_t popped = 0;
  TupleQueue::Batch batch;
  while (queue.Pop(&batch)) {
    ASSERT_EQ(batch.size(), 1u);
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(popped, kProducers * kBatchesPerProducer);
  EXPECT_EQ(pushed.load(), kProducers * kBatchesPerProducer);
}

TEST(TupleQueueTest, CloseNeverLosesAnAcceptedBatch) {
  // Hammer Close() against concurrent pushes: every Push that returned
  // true must be observed by the draining consumer; every Push after the
  // close must return false. Repeat to hit many interleavings.
  for (int round = 0; round < 20; ++round) {
    TupleQueue queue(kQueueBound);
    std::atomic<size_t> accepted{0};
    for (size_t p = 0; p < kProducers; ++p) queue.AddProducer();

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, &accepted, p] {
        for (size_t i = 0; i < kBatchesPerProducer; ++i) {
          if (!queue.Push({FakeRow(p, i)})) break;  // Closed: stop cleanly.
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        queue.ProducerDone();
      });
    }

    std::thread closer([&queue] { queue.Close(); });

    size_t popped = 0;
    TupleQueue::Batch batch;
    while (queue.Pop(&batch)) ++popped;
    for (auto& t : producers) t.join();
    closer.join();

    // After Close, the queue may still hold accepted batches the consumer
    // stopped before draining? No: Pop only returns false once the queue
    // is empty, so everything accepted was popped.
    EXPECT_EQ(popped, accepted.load()) << "round " << round;
    EXPECT_TRUE(queue.closed());
    // Pushes after close are rejected outright.
    EXPECT_FALSE(queue.Push({FakeRow(0, 0)}));
  }
}

TEST(TupleQueueTest, CancelDropsQueuedBatchesAndUnblocksEveryone) {
  for (int round = 0; round < 20; ++round) {
    TupleQueue queue(kQueueBound);
    std::atomic<size_t> accepted{0};
    for (size_t p = 0; p < kProducers; ++p) queue.AddProducer();

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, &accepted, p] {
        for (size_t i = 0; i < kBatchesPerProducer; ++i) {
          if (!queue.Push({FakeRow(p, i)})) break;
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        queue.ProducerDone();
      });
    }

    std::atomic<size_t> popped{0};
    std::thread consumer([&queue, &popped] {
      TupleQueue::Batch batch;
      while (queue.Pop(&batch)) popped.fetch_add(1, std::memory_order_relaxed);
    });

    queue.Cancel();  // Races everything above; must strand no thread.
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_LE(popped.load(), accepted.load()) << "round " << round;
    TupleQueue::Batch leftover;
    EXPECT_FALSE(queue.Pop(&leftover));
  }
}

TEST(TupleQueueTest, ManyConsumersDrainWithoutDuplication) {
  // Pop() is MPMC-safe: 8 producers vs 8 consumers, exact delivery count.
  TupleQueue queue(kQueueBound);
  std::atomic<size_t> popped{0};
  for (size_t p = 0; p < kProducers; ++p) queue.AddProducer();

  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (size_t i = 0; i < kBatchesPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({FakeRow(p, i)}));
      }
      queue.ProducerDone();
    });
  }
  for (size_t c = 0; c < kProducers; ++c) {
    threads.emplace_back([&queue, &popped] {
      TupleQueue::Batch batch;
      while (queue.Pop(&batch)) {
        ASSERT_EQ(batch.size(), 1u);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), kProducers * kBatchesPerProducer);
}

TEST(TupleQueueTest, CloseWhileProducersBlockedOnFullQueue) {
  // Regression for the shutdown race candidate: producers blocked in
  // Push() on a full queue must wake and return false when Close() lands,
  // instead of deadlocking against a consumer that has already stopped.
  TupleQueue queue(1);
  for (size_t p = 0; p < kProducers; ++p) queue.AddProducer();

  std::vector<std::thread> producers;
  std::atomic<size_t> rejected{0};
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &rejected, p] {
      for (size_t i = 0; i < kBatchesPerProducer; ++i) {
        if (!queue.Push({FakeRow(p, i)})) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      queue.ProducerDone();
    });
  }
  // Let at least one batch land, then close without ever draining.
  TupleQueue::Batch first;
  ASSERT_TRUE(queue.Pop(&first));
  queue.Close();
  for (auto& t : producers) t.join();  // Must not hang.
  EXPECT_GT(rejected.load(), 0u);

  // Graceful close keeps accepted batches poppable.
  TupleQueue::Batch batch;
  while (queue.Pop(&batch)) {
  }
  SUCCEED();
}

TEST(TupleQueueTest, CloseAndCancelAreIdempotentAndComposable) {
  TupleQueue queue(2);
  queue.AddProducer();
  ASSERT_TRUE(queue.Push({FakeRow(0, 0)}));
  queue.Close();
  queue.Close();
  EXPECT_FALSE(queue.Push({FakeRow(0, 1)}));
  TupleQueue::Batch batch;
  EXPECT_TRUE(queue.Pop(&batch));  // Close keeps queued batches.
  queue.Cancel();
  queue.Cancel();
  EXPECT_FALSE(queue.Pop(&batch));  // Cancel drops the rest.
  queue.ProducerDone();
}

}  // namespace
}  // namespace bufferdb::parallel

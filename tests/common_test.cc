#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/arena.h"
#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"

namespace bufferdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (size_t size : {1u, 3u, 7u, 8u, 13u, 100u}) {
    uint8_t* p = arena.Allocate(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(128);  // Small chunks to force growth.
  std::vector<std::pair<uint8_t*, size_t>> blocks;
  for (int i = 0; i < 100; ++i) {
    size_t size = 1 + static_cast<size_t>(i * 7 % 60);
    uint8_t* p = arena.Allocate(size);
    std::memset(p, i, size);
    blocks.emplace_back(p, size);
  }
  for (int i = 0; i < 100; ++i) {
    for (size_t b = 0; b < blocks[i].second; ++b) {
      EXPECT_EQ(blocks[i].first[b], static_cast<uint8_t>(i));
    }
  }
}

TEST(ArenaTest, LargeAllocationExceedingChunk) {
  Arena arena(64);
  uint8_t* p = arena.Allocate(10000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 10000);
  EXPECT_GE(arena.bytes_allocated(), 10000u);
}

TEST(ArenaTest, ResetReleasesAccounting) {
  Arena arena;
  arena.Allocate(100);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_NE(arena.Allocate(8), nullptr);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 15u);  // All values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(DateTest, EpochIsZero) { EXPECT_EQ(MakeDate(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(MakeDate(1970, 1, 2), 1);
  EXPECT_EQ(MakeDate(1969, 12, 31), -1);
  EXPECT_EQ(MakeDate(2000, 3, 1) - MakeDate(2000, 2, 28), 2);  // Leap year.
  EXPECT_EQ(MakeDate(1900, 3, 1) - MakeDate(1900, 2, 28), 1);  // Not leap.
}

TEST(DateTest, RoundTripYmd) {
  for (int64_t days : {0L, 1L, -1L, 8035L, 10592L, -719468L}) {
    int y, m, d;
    DateToYmd(days, &y, &m, &d);
    EXPECT_EQ(MakeDate(y, m, d), days);
  }
}

TEST(DateTest, RoundTripAllTpchDates) {
  // Every day in the TPC-H range survives a format/parse round trip.
  for (int64_t days = MakeDate(1992, 1, 1); days <= MakeDate(1998, 12, 31);
       ++days) {
    auto parsed = ParseDate(DateToString(days));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(*parsed, days);
  }
}

TEST(DateTest, FormatsIso) {
  EXPECT_EQ(DateToString(MakeDate(1998, 9, 2)), "1998-09-02");
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("1998-13-02").ok());
  EXPECT_FALSE(ParseDate("1998-00-02").ok());
  EXPECT_FALSE(ParseDate("1998-01-40").ok());
}

}  // namespace
}  // namespace bufferdb

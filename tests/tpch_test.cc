#include <gtest/gtest.h>

#include "common/date.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_schema.h"

namespace bufferdb::tpch {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* TpchTest::catalog_ = nullptr;

TEST_F(TpchTest, AllTablesPresent) {
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_NE(catalog_->GetTable(name), nullptr) << name;
  }
}

TEST_F(TpchTest, RowCountsScale) {
  EXPECT_EQ(catalog_->GetTable("region")->num_rows(), 5u);
  EXPECT_EQ(catalog_->GetTable("nation")->num_rows(), 25u);
  EXPECT_EQ(catalog_->GetTable("supplier")->num_rows(), 50u);
  EXPECT_EQ(catalog_->GetTable("customer")->num_rows(), 750u);
  EXPECT_EQ(catalog_->GetTable("part")->num_rows(), 1000u);
  EXPECT_EQ(catalog_->GetTable("partsupp")->num_rows(), 4000u);
  EXPECT_EQ(catalog_->GetTable("orders")->num_rows(), 7500u);
  // 1..7 lineitems per order, expectation 4x.
  size_t lineitems = catalog_->GetTable("lineitem")->num_rows();
  EXPECT_GT(lineitems, 7500u * 3);
  EXPECT_LT(lineitems, 7500u * 5);
}

TEST_F(TpchTest, OrderKeysAreDense) {
  Table* orders = catalog_->GetTable("orders");
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    EXPECT_EQ(orders->view(i).GetInt64(0), static_cast<int64_t>(i + 1));
  }
}

TEST_F(TpchTest, LineitemForeignKeysValid) {
  Table* lineitem = catalog_->GetTable("lineitem");
  int64_t num_orders = static_cast<int64_t>(
      catalog_->GetTable("orders")->num_rows());
  int64_t num_parts =
      static_cast<int64_t>(catalog_->GetTable("part")->num_rows());
  const Schema& s = lineitem->schema();
  int ok_col = s.FindColumn("l_orderkey");
  int pk_col = s.FindColumn("l_partkey");
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    TupleView v = lineitem->view(i);
    ASSERT_GE(v.GetInt64(ok_col), 1);
    ASSERT_LE(v.GetInt64(ok_col), num_orders);
    ASSERT_GE(v.GetInt64(pk_col), 1);
    ASSERT_LE(v.GetInt64(pk_col), num_parts);
  }
}

TEST_F(TpchTest, ShipdateWithinSpecRange) {
  Table* lineitem = catalog_->GetTable("lineitem");
  int col = lineitem->schema().FindColumn("l_shipdate");
  int64_t lo = MakeDate(1992, 1, 1);
  int64_t hi = MakeDate(1998, 12, 31);
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    int64_t d = lineitem->view(i).GetInt64(col);
    ASSERT_GE(d, lo);
    ASSERT_LE(d, hi);
  }
}

TEST_F(TpchTest, DiscountAndTaxRanges) {
  Table* lineitem = catalog_->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  int disc = s.FindColumn("l_discount");
  int tax = s.FindColumn("l_tax");
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    TupleView v = lineitem->view(i);
    ASSERT_GE(v.GetDouble(disc), 0.0);
    ASSERT_LE(v.GetDouble(disc), 0.10 + 1e-9);
    ASSERT_GE(v.GetDouble(tax), 0.0);
    ASSERT_LE(v.GetDouble(tax), 0.08 + 1e-9);
  }
}

TEST_F(TpchTest, TotalPriceConsistentWithLineitems) {
  // o_totalprice = sum over the order's lineitems of
  // extendedprice*(1-discount)*(1+tax).
  Table* orders = catalog_->GetTable("orders");
  Table* lineitem = catalog_->GetTable("lineitem");
  const Schema& ls = lineitem->schema();
  std::vector<double> totals(orders->num_rows() + 1, 0.0);
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    TupleView v = lineitem->view(i);
    double charge = v.GetDouble(ls.FindColumn("l_extendedprice")) *
                    (1 - v.GetDouble(ls.FindColumn("l_discount"))) *
                    (1 + v.GetDouble(ls.FindColumn("l_tax")));
    totals[static_cast<size_t>(v.GetInt64(0))] += charge;
  }
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    EXPECT_NEAR(orders->view(i).GetDouble(3), totals[i + 1], 1e-6);
  }
}

TEST_F(TpchTest, IndexesBuilt) {
  EXPECT_NE(catalog_->GetIndex("orders_pk"), nullptr);
  EXPECT_NE(catalog_->GetIndex("lineitem_orderkey"), nullptr);
  const IndexInfo* pk = catalog_->GetIndex("orders_pk");
  EXPECT_TRUE(pk->unique);
  EXPECT_EQ(pk->btree->size(), catalog_->GetTable("orders")->num_rows());
  const IndexInfo* li = catalog_->GetIndex("lineitem_orderkey");
  EXPECT_FALSE(li->unique);
  EXPECT_EQ(li->btree->size(), catalog_->GetTable("lineitem")->num_rows());
}

TEST_F(TpchTest, ReturnFlagConsistentWithLinestatus) {
  Table* lineitem = catalog_->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  int rf = s.FindColumn("l_returnflag");
  int lst = s.FindColumn("l_linestatus");
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    TupleView v = lineitem->view(i);
    std::string_view flag = v.GetString(rf);
    std::string_view status = v.GetString(lst);
    if (status == "O") {
      ASSERT_EQ(flag, "N");
    } else {
      ASSERT_TRUE(flag == "R" || flag == "A");
    }
  }
}

TEST(TpchGenTest, DeterministicAcrossRuns) {
  TpchConfig config;
  config.scale_factor = 0.001;
  Catalog a, b;
  ASSERT_TRUE(LoadTpch(config, &a).ok());
  ASSERT_TRUE(LoadTpch(config, &b).ok());
  Table* la = a.GetTable("lineitem");
  Table* lb = b.GetTable("lineitem");
  ASSERT_EQ(la->num_rows(), lb->num_rows());
  for (size_t i = 0; i < la->num_rows(); i += 97) {
    EXPECT_EQ(la->view(i).ToString(), lb->view(i).ToString());
  }
}

TEST(TpchGenTest, NumOrdersScales) {
  EXPECT_EQ(NumOrders(1.0), 1500000);
  EXPECT_EQ(NumOrders(0.01), 15000);
  EXPECT_EQ(NumOrders(0.0), 1);  // Clamped.
}

TEST(TpchSchemaTest, LineitemHas16Columns) {
  EXPECT_EQ(LineitemSchema().num_columns(), 16u);
  EXPECT_EQ(OrdersSchema().num_columns(), 9u);
  EXPECT_EQ(LineitemSchema().column(10).name, "l_shipdate");
  EXPECT_EQ(LineitemSchema().column(10).type, DataType::kDate);
}

}  // namespace
}  // namespace bufferdb::tpch

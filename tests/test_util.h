#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "exec/contract_check.h"
#include "exec/operator.h"
#include "expr/expression.h"
#include "storage/table.h"

namespace bufferdb::testutil {

/// Wraps a plan root in the Operator state-machine contract checker
/// (DESIGN.md section 9.2) in checking builds — Debug or
/// -DBUFFERDB_CHECK_CONTRACTS=ON — and is the identity otherwise.
/// `static`, not `inline`: BUFFERDB_WRAP_CONTRACT_CHECKED expands per
/// translation unit (contract_check_test force-toggles it both ways in one
/// binary), so the function must have internal linkage to stay ODR-clean.
[[maybe_unused]] static OperatorPtr ContractChecked(OperatorPtr op) {
  return BUFFERDB_WRAP_CONTRACT_CHECKED(std::move(op));
}

/// Two-column (k INT64, v DOUBLE) table from (k, v) pairs.
inline std::unique_ptr<Table> MakeKvTable(
    const std::string& name,
    const std::vector<std::pair<int64_t, double>>& rows) {
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(name, schema);
  for (const auto& [k, v] : rows) {
    table->AppendRow({Value::Int64(k), Value::Double(v)});
  }
  return table;
}

inline ExprPtr Col(const Schema& schema, const std::string& name) {
  auto r = MakeColumnRef(schema, name);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(*r);
}

inline ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto res = MakeBinary(op, std::move(l), std::move(r));
  EXPECT_TRUE(res.ok()) << res.status();
  return std::move(*res);
}

inline ExprPtr Lit(Value v) { return MakeLiteral(std::move(v)); }

/// Executes a plan (no simulation) and returns boxed rows.
inline std::vector<std::vector<Value>> RunPlan(Operator* root) {
  ExecContext ctx;
  auto rows = ExecutePlanRows(root, &ctx);
  EXPECT_TRUE(rows.ok()) << rows.status();
  return rows.ok() ? *rows : std::vector<std::vector<Value>>{};
}

/// Renders result rows as sorted strings for order-insensitive comparison.
inline std::vector<std::string> Canonical(
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  for (const auto& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bufferdb::testutil


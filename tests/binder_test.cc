#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "sql/binder.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace bufferdb::sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    ASSERT_TRUE(tpch::LoadTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  LogicalQuery MustBind(const std::string& sql) {
    Binder binder(catalog_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return q.ok() ? std::move(*q) : LogicalQuery{};
  }

  static Catalog* catalog_;
};

Catalog* BinderTest::catalog_ = nullptr;

TEST_F(BinderTest, SingleTableAggregateQuery) {
  LogicalQuery q = MustBind(
      "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS s, "
      "AVG(l_quantity) AS a, COUNT(*) AS c "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'");
  ASSERT_EQ(q.tables.size(), 1u);
  EXPECT_EQ(q.tables[0]->name(), "lineitem");
  ASSERT_NE(q.filters[0], nullptr);
  EXPECT_TRUE(q.has_aggregates);
  ASSERT_EQ(q.items.size(), 3u);
  EXPECT_EQ(q.items[0].agg, AggFunc::kSum);
  EXPECT_EQ(q.items[0].name, "s");
  EXPECT_EQ(q.items[0].expr->result_type(), DataType::kDouble);
  EXPECT_EQ(q.items[2].agg, AggFunc::kCountStar);
}

TEST_F(BinderTest, JoinDetectedAndFiltersClassified) {
  LogicalQuery q = MustBind(
      "SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount) "
      "FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'");
  ASSERT_EQ(q.tables.size(), 2u);
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.tables[0]->schema().column(q.joins[0].left_col).name,
            "l_orderkey");
  EXPECT_EQ(q.tables[1]->schema().column(q.joins[0].right_col).name,
            "o_orderkey");
  // Shipdate filter pushed to lineitem, none on orders, no cross preds.
  ASSERT_NE(q.filters[0], nullptr);
  EXPECT_EQ(q.filters[1], nullptr);
  EXPECT_TRUE(q.cross_predicates.empty());
  // Pushed filter is bound to lineitem's local schema.
  EXPECT_TRUE(ExprBoundTo(*q.filters[0],
                          q.tables[0]->schema().num_columns()));
}

TEST_F(BinderTest, JoinColumnOrderNormalized) {
  // Reversed equi-join spelling still maps left table -> left column.
  LogicalQuery q = MustBind(
      "SELECT COUNT(*) FROM lineitem, orders WHERE o_orderkey = l_orderkey");
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].left_table, 0);
  EXPECT_EQ(q.tables[0]->schema().column(q.joins[0].left_col).name,
            "l_orderkey");
}

TEST_F(BinderTest, FiltersOnBothTables) {
  LogicalQuery q = MustBind(
      "SELECT COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_quantity > 10 "
      "AND o_orderdate < DATE '1995-01-01'");
  ASSERT_NE(q.filters[0], nullptr);
  ASSERT_NE(q.filters[1], nullptr);
}

TEST_F(BinderTest, ResidualCrossTablePredicate) {
  LogicalQuery q = MustBind(
      "SELECT COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_extendedprice > o_totalprice");
  ASSERT_EQ(q.cross_predicates.size(), 1u);
  EXPECT_TRUE(
      ExprBoundTo(*q.cross_predicates[0], q.input_schema.num_columns()));
}

TEST_F(BinderTest, QualifiedColumns) {
  LogicalQuery q = MustBind(
      "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 5");
  ASSERT_NE(q.filters[0], nullptr);
}

TEST_F(BinderTest, GroupByQuery) {
  LogicalQuery q = MustBind(
      "SELECT l_returnflag, COUNT(*) AS c FROM lineitem "
      "GROUP BY l_returnflag");
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_TRUE(q.items[0].is_group_key);
  EXPECT_FALSE(q.items[0].is_aggregate);
  EXPECT_TRUE(q.items[1].is_aggregate);
}

TEST_F(BinderTest, PlainProjectionQuery) {
  LogicalQuery q = MustBind(
      "SELECT l_orderkey, l_quantity * 2 AS dbl FROM lineitem "
      "WHERE l_linenumber = 1 LIMIT 5");
  EXPECT_FALSE(q.has_aggregates);
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_EQ(q.items[1].name, "dbl");
  EXPECT_EQ(q.limit, 5);
}

TEST_F(BinderTest, Errors) {
  Binder binder(catalog_);
  EXPECT_FALSE(binder.BindSql("SELECT x FROM nosuchtable").ok());
  EXPECT_FALSE(binder.BindSql("SELECT nosuchcol FROM lineitem").ok());
  EXPECT_FALSE(
      binder.BindSql("SELECT COUNT(*) FROM lineitem, orders").ok());
  // Non-grouped plain column with aggregates.
  EXPECT_FALSE(binder.BindSql(
                         "SELECT l_orderkey, COUNT(*) FROM lineitem")
                   .ok());
  // Aggregate before group key.
  EXPECT_FALSE(binder.BindSql("SELECT COUNT(*), l_returnflag FROM lineitem "
                              "GROUP BY l_returnflag")
                   .ok());
  // Comparing string with number.
  EXPECT_FALSE(
      binder.BindSql("SELECT COUNT(*) FROM lineitem WHERE l_returnflag = 3")
          .ok());
  // Non-boolean WHERE.
  EXPECT_FALSE(
      binder.BindSql("SELECT COUNT(*) FROM lineitem WHERE l_quantity").ok());
  // Three tables without join predicates.
  EXPECT_FALSE(binder.BindSql(
                         "SELECT COUNT(*) FROM lineitem, orders, customer")
                   .ok());
}

TEST_F(BinderTest, ThreeTableJoinEdges) {
  LogicalQuery q = MustBind(
      "SELECT COUNT(*) FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
      "AND c_acctbal > 0");
  ASSERT_EQ(q.tables.size(), 3u);
  ASSERT_EQ(q.joins.size(), 2u);
  EXPECT_EQ(q.joins[0].left_table, 0);   // customer-orders.
  EXPECT_EQ(q.joins[0].right_table, 1);
  EXPECT_EQ(q.joins[1].left_table, 1);   // orders-lineitem.
  EXPECT_EQ(q.joins[1].right_table, 2);
  ASSERT_NE(q.filters[0], nullptr);      // acctbal filter on customer.
  EXPECT_EQ(q.input_schema.num_columns(),
            q.tables[0]->schema().num_columns() +
                q.tables[1]->schema().num_columns() +
                q.tables[2]->schema().num_columns());
}

TEST_F(BinderTest, DefaultNamesAreGenerated) {
  LogicalQuery q = MustBind("SELECT SUM(l_quantity), COUNT(*) FROM lineitem");
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_EQ(q.items[0].name, "sum_0");
  EXPECT_EQ(q.items[1].name, "count_1");
}

}  // namespace
}  // namespace bufferdb::sql

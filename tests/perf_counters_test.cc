// Tests for the hardware-PMU observability layer (src/perf/): the
// BUFFERDB_PERF_DISABLE-forced no-op backend, result equivalence of profiled
// plans, and the per-operator attribution arithmetic.
//
// The whole binary runs with BUFFERDB_PERF_DISABLE=1 (forced below, before
// any thread's counter group is built) so the degradation path — the one CI
// containers and locked-down runners exercise — is tested deterministically
// even on hosts that do have a PMU. The attribution checks are written
// against wall time, which PerfRegion collects unconditionally, so they hold
// on both backends.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "exec/filter.h"
#include "exec/hash_aggregation.h"
#include "exec/seq_scan.h"
#include "perf/perf_counters.h"
#include "perf/perf_region.h"
#include "perf/profiled_operator.h"
#include "perf/query_profile.h"
#include "test_util.h"

namespace bufferdb {
namespace {

// Force the no-op backend before main() — and before any lazily-built
// thread_local ThreadCounterGroup() — runs.
const bool g_perf_disabled_for_test = [] {
  ::setenv("BUFFERDB_PERF_DISABLE", "1", /*overwrite=*/1);
  return true;
}();

std::unique_ptr<Table> SmallTable() {
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.emplace_back(i % 10, static_cast<double>(i));
  }
  return testutil::MakeKvTable("items", rows);
}

// scan(items) -> filter(k < 7) -> hash-agg(by k: SUM(v), COUNT).
OperatorPtr MakePlan(Table* table, size_t batch_size = 1) {
  const Schema& schema = table->schema();
  OperatorPtr plan = std::make_unique<SeqScanOperator>(table, nullptr);
  plan = std::make_unique<FilterOperator>(
      std::move(plan),
      testutil::Bin(BinaryOp::kLt, testutil::Col(schema, "k"),
                    testutil::Lit(Value::Int64(7))));
  std::vector<GroupKeyExpr> groups;
  groups.push_back(GroupKeyExpr{testutil::Col(schema, "k"), "k"});
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{AggFunc::kSum, testutil::Col(schema, "v"), "sum_v"});
  specs.push_back(AggSpec{AggFunc::kCountStar, nullptr, "cnt"});
  auto agg = std::make_unique<HashAggregationOperator>(
      std::move(plan), std::move(groups), std::move(specs));
  agg->set_batch_size(batch_size);
  return agg;
}

TEST(PerfCountersTest, EnvOverrideForcesNoopBackendWithReason) {
  ASSERT_TRUE(g_perf_disabled_for_test);
  perf::PerfCounterGroup group;  // Fresh group, not the thread_local one.
  EXPECT_FALSE(group.available());
  EXPECT_FALSE(group.fully_available());
  for (int e = 0; e < perf::kNumHwEvents; ++e) {
    EXPECT_FALSE(group.event_supported(static_cast<perf::HwEvent>(e)));
  }
  // The degradation contract: the reason is surfaced, never silently empty.
  EXPECT_NE(group.unavailable_reason().find("BUFFERDB_PERF_DISABLE"),
            std::string::npos)
      << group.unavailable_reason();
  EXPECT_FALSE(group.ReadNow().AnyNonZero());
}

TEST(PerfCountersTest, HwCountersArithmetic) {
  perf::HwCounters a;
  a.cycles = 100;
  a.l1i_misses = 10;
  perf::HwCounters b;
  b.cycles = 30;
  b.l1i_misses = 25;  // More than a's: subtraction must saturate, not wrap.
  perf::HwCounters diff = a - b;
  EXPECT_EQ(diff.cycles, 70u);
  EXPECT_EQ(diff.l1i_misses, 0u);
  b += a;
  EXPECT_EQ(b.cycles, 130u);
  EXPECT_TRUE(b.AnyNonZero());
  EXPECT_FALSE(perf::HwCounters().AnyNonZero());
  EXPECT_NE(a.ToJson().find("\"cycles\": 100"), std::string::npos);
}

TEST(PerfCountersTest, PerfRegionAccumulatesWallUnconditionally) {
  uint64_t wall_ns = 0;
  perf::HwCounters hw;
  {
    perf::PerfRegion region(&hw, &wall_ns);
    // Enough work for any steady_clock granularity.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GT(wall_ns, 0u);
  // Forced no-op backend: hardware deltas must stay zero.
  EXPECT_FALSE(hw.AnyNonZero());
}

TEST(PerfCountersTest, ProfiledPlanProducesIdenticalResults) {
  auto table = SmallTable();
  OperatorPtr plain = MakePlan(table.get());
  auto expected = testutil::RunPlan(plain.get());
  ASSERT_FALSE(expected.empty());

  perf::QueryProfile profile;
  OperatorPtr profiled = perf::ProfilePlan(MakePlan(table.get()), &profile);
  auto got = testutil::RunPlan(profiled.get());

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), expected[i].size());
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_TRUE(got[i][j] == expected[i][j]) << "row " << i << " col " << j;
    }
  }
  // The no-op backend's reason must survive into the profile.
  EXPECT_FALSE(profile.hw_available());
  EXPECT_FALSE(profile.unavailable_reason().empty());
}

TEST(PerfCountersTest, AttributionTelescopesOnSerialPlan) {
  auto table = SmallTable();
  perf::QueryProfile profile;
  OperatorPtr root = perf::ProfilePlan(MakePlan(table.get()), &profile);
  auto rows = testutil::RunPlan(root.get());
  ASSERT_EQ(rows.size(), 7u);  // k in 0..6 after the filter.

  ASSERT_EQ(profile.nodes().size(), 3u);  // agg, filter, scan.
  uint64_t exclusive_sum = 0;
  for (const perf::OperatorStats& node : profile.nodes()) {
    EXPECT_GT(node.opens, 0u) << node.label;
    EXPECT_GT(node.next_calls + node.batch_calls, 0u) << node.label;
    EXPECT_EQ(node.fragment, -1) << node.label;  // Serial: consumer thread.
    exclusive_sum += profile.ExclusiveWallNs(node.id);
  }
  // Serial plan: per-operator exclusive costs telescope back to exactly the
  // root's inclusive cost — nothing double-counted, nothing dropped. The
  // same identity holds for cycles on a live PMU; wall time is the backend-
  // independent version.
  EXPECT_EQ(exclusive_sum, profile.RootWallNs());
  EXPECT_EQ(profile.TotalAttributedWallNs(), profile.RootWallNs());
  EXPECT_GT(profile.RootWallNs(), 0u);
  EXPECT_FALSE(profile.RootHw().AnyNonZero());  // Forced no-op backend.
}

TEST(PerfCountersTest, BatchPathIsAttributed) {
  auto table = SmallTable();
  perf::QueryProfile profile;
  OperatorPtr root =
      perf::ProfilePlan(MakePlan(table.get(), /*batch_size=*/64), &profile);
  auto rows = testutil::RunPlan(root.get());
  ASSERT_EQ(rows.size(), 7u);

  // The aggregation drains its child via NextBatch; the child wrapper must
  // count those calls (and their rows) rather than lose them.
  uint64_t batch_calls = 0;
  uint64_t batched_rows = 0;
  for (const perf::OperatorStats& node : profile.nodes()) {
    batch_calls += node.batch_calls;
    if (node.batch_calls > 0) batched_rows += node.rows;
  }
  EXPECT_GT(batch_calls, 0u);
  // The whole pipeline below the aggregation runs batched: the scan hands
  // its 500 rows to the filter in batches, the filter its 350 survivors
  // (k % 10 < 7) to the aggregation.
  EXPECT_EQ(batched_rows, 850u);
}

TEST(PerfCountersTest, TextAndJsonDumps) {
  auto table = SmallTable();
  perf::QueryProfile profile;
  OperatorPtr root = perf::ProfilePlan(MakePlan(table.get()), &profile);
  testutil::RunPlan(root.get());

  std::string text = profile.ToText();
  EXPECT_NE(text.find("Scan(items)"), std::string::npos) << text;
  EXPECT_NE(text.find("HashAgg"), std::string::npos) << text;

  std::string json = profile.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"hw_available\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nodes\":"), std::string::npos);
  EXPECT_NE(json.find("\"unavailable_reason\""), std::string::npos);
}

}  // namespace
}  // namespace bufferdb

file(REMOVE_RECURSE
  "../bench/bench_fig15_nestloop"
  "../bench/bench_fig15_nestloop.pdb"
  "CMakeFiles/bench_fig15_nestloop.dir/bench_fig15_nestloop.cc.o"
  "CMakeFiles/bench_fig15_nestloop.dir/bench_fig15_nestloop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_nestloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

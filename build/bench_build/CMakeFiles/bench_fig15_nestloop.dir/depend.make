# Empty dependencies file for bench_fig15_nestloop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig13_buffer_size_breakdown"
  "../bench/bench_fig13_buffer_size_breakdown.pdb"
  "CMakeFiles/bench_fig13_buffer_size_breakdown.dir/bench_fig13_buffer_size_breakdown.cc.o"
  "CMakeFiles/bench_fig13_buffer_size_breakdown.dir/bench_fig13_buffer_size_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_buffer_size_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

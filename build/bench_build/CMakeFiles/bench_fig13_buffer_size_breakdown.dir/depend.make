# Empty dependencies file for bench_fig13_buffer_size_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table4_cpi"
  "../bench/bench_table4_cpi.pdb"
  "CMakeFiles/bench_table4_cpi.dir/bench_table4_cpi.cc.o"
  "CMakeFiles/bench_table4_cpi.dir/bench_table4_cpi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig04_query1_breakdown.
# This may be replaced when dependencies are built.

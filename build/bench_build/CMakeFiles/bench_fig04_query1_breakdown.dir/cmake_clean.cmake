file(REMOVE_RECURSE
  "../bench/bench_fig04_query1_breakdown"
  "../bench/bench_fig04_query1_breakdown.pdb"
  "CMakeFiles/bench_fig04_query1_breakdown.dir/bench_fig04_query1_breakdown.cc.o"
  "CMakeFiles/bench_fig04_query1_breakdown.dir/bench_fig04_query1_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_query1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

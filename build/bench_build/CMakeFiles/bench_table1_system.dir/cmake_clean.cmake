file(REMOVE_RECURSE
  "../bench/bench_table1_system"
  "../bench/bench_table1_system.pdb"
  "CMakeFiles/bench_table1_system.dir/bench_table1_system.cc.o"
  "CMakeFiles/bench_table1_system.dir/bench_table1_system.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_table2_footprints"
  "../bench/bench_table2_footprints.pdb"
  "CMakeFiles/bench_table2_footprints.dir/bench_table2_footprints.cc.o"
  "CMakeFiles/bench_table2_footprints.dir/bench_table2_footprints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_footprints.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_micro_buffer"
  "../bench/bench_micro_buffer.pdb"
  "CMakeFiles/bench_micro_buffer.dir/bench_micro_buffer.cc.o"
  "CMakeFiles/bench_micro_buffer.dir/bench_micro_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

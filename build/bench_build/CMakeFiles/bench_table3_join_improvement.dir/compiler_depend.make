# Empty compiler generated dependencies file for bench_table3_join_improvement.
# This may be replaced when dependencies are built.

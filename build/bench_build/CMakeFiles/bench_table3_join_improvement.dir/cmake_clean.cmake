file(REMOVE_RECURSE
  "../bench/bench_table3_join_improvement"
  "../bench/bench_table3_join_improvement.pdb"
  "CMakeFiles/bench_table3_join_improvement.dir/bench_table3_join_improvement.cc.o"
  "CMakeFiles/bench_table3_join_improvement.dir/bench_table3_join_improvement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_join_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig17_mergejoin"
  "../bench/bench_fig17_mergejoin.pdb"
  "CMakeFiles/bench_fig17_mergejoin.dir/bench_fig17_mergejoin.cc.o"
  "CMakeFiles/bench_fig17_mergejoin.dir/bench_fig17_mergejoin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mergejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_mergejoin.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ext_buffered_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_buffered_index"
  "../bench/bench_ext_buffered_index.pdb"
  "CMakeFiles/bench_ext_buffered_index.dir/bench_ext_buffered_index.cc.o"
  "CMakeFiles/bench_ext_buffered_index.dir/bench_ext_buffered_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_buffered_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ablation_branch"
  "../bench/bench_ablation_branch.pdb"
  "CMakeFiles/bench_ablation_branch.dir/bench_ablation_branch.cc.o"
  "CMakeFiles/bench_ablation_branch.dir/bench_ablation_branch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig16_hashjoin"
  "../bench/bench_fig16_hashjoin.pdb"
  "CMakeFiles/bench_fig16_hashjoin.dir/bench_fig16_hashjoin.cc.o"
  "CMakeFiles/bench_fig16_hashjoin.dir/bench_fig16_hashjoin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hashjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

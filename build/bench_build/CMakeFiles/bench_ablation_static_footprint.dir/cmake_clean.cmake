file(REMOVE_RECURSE
  "../bench/bench_ablation_static_footprint"
  "../bench/bench_ablation_static_footprint.pdb"
  "CMakeFiles/bench_ablation_static_footprint.dir/bench_ablation_static_footprint.cc.o"
  "CMakeFiles/bench_ablation_static_footprint.dir/bench_ablation_static_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig01_pattern"
  "../bench/bench_fig01_pattern.pdb"
  "CMakeFiles/bench_fig01_pattern.dir/bench_fig01_pattern.cc.o"
  "CMakeFiles/bench_fig01_pattern.dir/bench_fig01_pattern.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

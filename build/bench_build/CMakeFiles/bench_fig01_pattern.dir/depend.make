# Empty dependencies file for bench_fig01_pattern.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig11_cardinality"
  "../bench/bench_fig11_cardinality.pdb"
  "CMakeFiles/bench_fig11_cardinality.dir/bench_fig11_cardinality.cc.o"
  "CMakeFiles/bench_fig11_cardinality.dir/bench_fig11_cardinality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_cardinality.
# This may be replaced when dependencies are built.

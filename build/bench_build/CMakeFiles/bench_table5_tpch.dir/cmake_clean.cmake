file(REMOVE_RECURSE
  "../bench/bench_table5_tpch"
  "../bench/bench_table5_tpch.pdb"
  "CMakeFiles/bench_table5_tpch.dir/bench_table5_tpch.cc.o"
  "CMakeFiles/bench_table5_tpch.dir/bench_table5_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exec_sort_test.dir/exec_sort_test.cc.o"
  "CMakeFiles/exec_sort_test.dir/exec_sort_test.cc.o.d"
  "exec_sort_test"
  "exec_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/buffer_operator_test.dir/buffer_operator_test.cc.o"
  "CMakeFiles/buffer_operator_test.dir/buffer_operator_test.cc.o.d"
  "buffer_operator_test"
  "buffer_operator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for buffer_operator_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/threshold_calibration_test.dir/threshold_calibration_test.cc.o"
  "CMakeFiles/threshold_calibration_test.dir/threshold_calibration_test.cc.o.d"
  "threshold_calibration_test"
  "threshold_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

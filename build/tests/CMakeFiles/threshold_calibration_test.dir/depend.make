# Empty dependencies file for threshold_calibration_test.
# This may be replaced when dependencies are built.

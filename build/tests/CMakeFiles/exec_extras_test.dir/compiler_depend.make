# Empty compiler generated dependencies file for exec_extras_test.
# This may be replaced when dependencies are built.

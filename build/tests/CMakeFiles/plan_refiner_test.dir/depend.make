# Empty dependencies file for plan_refiner_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/plan_refiner_test.dir/plan_refiner_test.cc.o"
  "CMakeFiles/plan_refiner_test.dir/plan_refiner_test.cc.o.d"
  "plan_refiner_test"
  "plan_refiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

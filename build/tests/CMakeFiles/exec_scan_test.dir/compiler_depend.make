# Empty compiler generated dependencies file for exec_scan_test.
# This may be replaced when dependencies are built.

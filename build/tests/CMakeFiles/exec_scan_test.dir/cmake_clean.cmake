file(REMOVE_RECURSE
  "CMakeFiles/exec_scan_test.dir/exec_scan_test.cc.o"
  "CMakeFiles/exec_scan_test.dir/exec_scan_test.cc.o.d"
  "exec_scan_test"
  "exec_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exec_agg_test.dir/exec_agg_test.cc.o"
  "CMakeFiles/exec_agg_test.dir/exec_agg_test.cc.o.d"
  "exec_agg_test"
  "exec_agg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

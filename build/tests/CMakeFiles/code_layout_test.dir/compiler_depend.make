# Empty compiler generated dependencies file for code_layout_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/code_layout_test.dir/code_layout_test.cc.o"
  "CMakeFiles/code_layout_test.dir/code_layout_test.cc.o.d"
  "code_layout_test"
  "code_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/call_sequence_test.dir/call_sequence_test.cc.o"
  "CMakeFiles/call_sequence_test.dir/call_sequence_test.cc.o.d"
  "call_sequence_test"
  "call_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

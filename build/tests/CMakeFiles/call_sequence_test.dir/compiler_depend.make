# Empty compiler generated dependencies file for call_sequence_test.
# This may be replaced when dependencies are built.

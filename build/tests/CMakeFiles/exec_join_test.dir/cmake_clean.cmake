file(REMOVE_RECURSE
  "CMakeFiles/exec_join_test.dir/exec_join_test.cc.o"
  "CMakeFiles/exec_join_test.dir/exec_join_test.cc.o.d"
  "exec_join_test"
  "exec_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tpch_pricing_summary.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tpch_pricing_summary.dir/tpch_pricing_summary.cpp.o"
  "CMakeFiles/tpch_pricing_summary.dir/tpch_pricing_summary.cpp.o.d"
  "tpch_pricing_summary"
  "tpch_pricing_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_pricing_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

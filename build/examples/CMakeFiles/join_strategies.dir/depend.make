# Empty dependencies file for join_strategies.
# This may be replaced when dependencies are built.

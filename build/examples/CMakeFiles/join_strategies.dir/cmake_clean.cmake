file(REMOVE_RECURSE
  "CMakeFiles/join_strategies.dir/join_strategies.cpp.o"
  "CMakeFiles/join_strategies.dir/join_strategies.cpp.o.d"
  "join_strategies"
  "join_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

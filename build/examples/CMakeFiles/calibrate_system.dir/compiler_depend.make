# Empty compiler generated dependencies file for calibrate_system.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/calibrate_system.dir/calibrate_system.cpp.o"
  "CMakeFiles/calibrate_system.dir/calibrate_system.cpp.o.d"
  "calibrate_system"
  "calibrate_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

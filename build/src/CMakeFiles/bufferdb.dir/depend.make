# Empty dependencies file for bufferdb.
# This may be replaced when dependencies are built.

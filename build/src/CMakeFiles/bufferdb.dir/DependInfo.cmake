
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/bufferdb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/bufferdb.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/value.cc" "src/CMakeFiles/bufferdb.dir/catalog/value.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/catalog/value.cc.o.d"
  "/root/repo/src/common/arena.cc" "src/CMakeFiles/bufferdb.dir/common/arena.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/common/arena.cc.o.d"
  "/root/repo/src/common/date.cc" "src/CMakeFiles/bufferdb.dir/common/date.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/common/date.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/bufferdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/common/status.cc.o.d"
  "/root/repo/src/core/buffer_operator.cc" "src/CMakeFiles/bufferdb.dir/core/buffer_operator.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/core/buffer_operator.cc.o.d"
  "/root/repo/src/core/buffered_index_join.cc" "src/CMakeFiles/bufferdb.dir/core/buffered_index_join.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/core/buffered_index_join.cc.o.d"
  "/root/repo/src/core/execution_group.cc" "src/CMakeFiles/bufferdb.dir/core/execution_group.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/core/execution_group.cc.o.d"
  "/root/repo/src/core/plan_refiner.cc" "src/CMakeFiles/bufferdb.dir/core/plan_refiner.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/core/plan_refiner.cc.o.d"
  "/root/repo/src/core/threshold_calibration.cc" "src/CMakeFiles/bufferdb.dir/core/threshold_calibration.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/core/threshold_calibration.cc.o.d"
  "/root/repo/src/exec/aggregation.cc" "src/CMakeFiles/bufferdb.dir/exec/aggregation.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/aggregation.cc.o.d"
  "/root/repo/src/exec/distinct.cc" "src/CMakeFiles/bufferdb.dir/exec/distinct.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/distinct.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/bufferdb.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/hash_aggregation.cc" "src/CMakeFiles/bufferdb.dir/exec/hash_aggregation.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/hash_aggregation.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/bufferdb.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/index_scan.cc" "src/CMakeFiles/bufferdb.dir/exec/index_scan.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/index_scan.cc.o.d"
  "/root/repo/src/exec/limit.cc" "src/CMakeFiles/bufferdb.dir/exec/limit.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/limit.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/CMakeFiles/bufferdb.dir/exec/materialize.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/materialize.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "src/CMakeFiles/bufferdb.dir/exec/merge_join.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/merge_join.cc.o.d"
  "/root/repo/src/exec/nested_loop_join.cc" "src/CMakeFiles/bufferdb.dir/exec/nested_loop_join.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/nested_loop_join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/bufferdb.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/bufferdb.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/seq_scan.cc" "src/CMakeFiles/bufferdb.dir/exec/seq_scan.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/seq_scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/bufferdb.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/stream_aggregation.cc" "src/CMakeFiles/bufferdb.dir/exec/stream_aggregation.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/stream_aggregation.cc.o.d"
  "/root/repo/src/exec/topn.cc" "src/CMakeFiles/bufferdb.dir/exec/topn.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/exec/topn.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/bufferdb.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/bufferdb.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/expr/expression.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/bufferdb.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/index/btree.cc.o.d"
  "/root/repo/src/plan/cardinality.cc" "src/CMakeFiles/bufferdb.dir/plan/cardinality.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/plan/cardinality.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/bufferdb.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/physical_planner.cc" "src/CMakeFiles/bufferdb.dir/plan/physical_planner.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/plan/physical_planner.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/bufferdb.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/profile/calibration_io.cc" "src/CMakeFiles/bufferdb.dir/profile/calibration_io.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/profile/calibration_io.cc.o.d"
  "/root/repo/src/profile/calibration_queries.cc" "src/CMakeFiles/bufferdb.dir/profile/calibration_queries.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/profile/calibration_queries.cc.o.d"
  "/root/repo/src/profile/call_graph.cc" "src/CMakeFiles/bufferdb.dir/profile/call_graph.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/profile/call_graph.cc.o.d"
  "/root/repo/src/profile/call_sequence.cc" "src/CMakeFiles/bufferdb.dir/profile/call_sequence.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/profile/call_sequence.cc.o.d"
  "/root/repo/src/profile/footprint.cc" "src/CMakeFiles/bufferdb.dir/profile/footprint.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/profile/footprint.cc.o.d"
  "/root/repo/src/sim/branch_predictor.cc" "src/CMakeFiles/bufferdb.dir/sim/branch_predictor.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sim/branch_predictor.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/bufferdb.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/code_layout.cc" "src/CMakeFiles/bufferdb.dir/sim/code_layout.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sim/code_layout.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/bufferdb.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/sim_cpu.cc" "src/CMakeFiles/bufferdb.dir/sim/sim_cpu.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sim/sim_cpu.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/bufferdb.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/bufferdb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/bufferdb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/bufferdb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/bufferdb.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/storage/tuple.cc.o.d"
  "/root/repo/src/tpch/tbl_io.cc" "src/CMakeFiles/bufferdb.dir/tpch/tbl_io.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/tpch/tbl_io.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/CMakeFiles/bufferdb.dir/tpch/tpch_gen.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/tpch/tpch_schema.cc" "src/CMakeFiles/bufferdb.dir/tpch/tpch_schema.cc.o" "gcc" "src/CMakeFiles/bufferdb.dir/tpch/tpch_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

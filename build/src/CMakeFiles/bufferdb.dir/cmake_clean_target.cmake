file(REMOVE_RECURSE
  "libbufferdb.a"
)

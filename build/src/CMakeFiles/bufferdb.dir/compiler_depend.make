# Empty compiler generated dependencies file for bufferdb.
# This may be replaced when dependencies are built.
